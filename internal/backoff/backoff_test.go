package backoff

import (
	"testing"
	"time"
)

// TestReliablelinkLadder pins the exact interval sequence the reliable
// link has always used (RetransmitAfter 8 doubling to RetransmitCap 128):
// extracting the logic into this package must not move a single step.
func TestReliablelinkLadder(t *testing.T) {
	p := Policy{Initial: 8, Cap: 128}
	want := []int{8, 16, 32, 64, 128, 128, 128}
	s := p.Sequence()
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("Next()[%d] = %d, want %d", i, got, w)
		}
		if got := p.Interval(i); got != w {
			t.Errorf("Interval(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestDefaults(t *testing.T) {
	var p Policy // all zero: initial 1, factor 2, no cap
	want := []int{1, 2, 4, 8, 16}
	s := p.Sequence()
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("zero policy Next()[%d] = %d, want %d", i, got, w)
		}
	}
	if got := p.Interval(-3); got != 1 {
		t.Errorf("Interval(-3) = %d, want 1", got)
	}
}

func TestReset(t *testing.T) {
	s := Policy{Initial: 3, Cap: 24}.Sequence()
	s.Next()
	s.Next()
	s.Reset()
	if got := s.Next(); got != 3 {
		t.Fatalf("after Reset, Next() = %d, want 3", got)
	}
}

func TestOverflowSaturates(t *testing.T) {
	p := Policy{Initial: maxInt/2 + 1} // uncapped: doubling would overflow
	s := p.Sequence()
	s.Next()
	if got := s.Next(); got != maxInt {
		t.Fatalf("overflowed interval = %d, want maxInt", got)
	}
	if got := p.Interval(4); got != maxInt {
		t.Fatalf("Interval(4) = %d, want maxInt", got)
	}
}

// TestSeededJitter checks determinism (same seed, same intervals), spread
// (intervals stay inside the jitter band) and that distinct seeds diverge.
func TestSeededJitter(t *testing.T) {
	p := Policy{Initial: 100, Cap: 1600, Jitter: 0.2}
	a, b := p.Seeded(7), p.Seeded(7)
	other := p.Seeded(8)
	diverged := false
	for i := 0; i < 20; i++ {
		exact := p.Interval(i)
		av, bv := a.Next(), b.Next()
		if av != bv {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, av, bv)
		}
		lo := int(float64(exact) * 0.8)
		hi := int(float64(exact)*1.2) + 1
		if av < lo || av > hi {
			t.Fatalf("jittered interval %d outside [%d, %d] at attempt %d", av, lo, hi, i)
		}
		if other.Next() != av {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 produced identical jitter streams")
	}
}

func TestUnseededIgnoresJitter(t *testing.T) {
	p := Policy{Initial: 10, Cap: 80, Jitter: 0.5}
	s := p.Sequence()
	for i := 0; i < 6; i++ {
		if got, want := s.Next(), p.Interval(i); got != want {
			t.Fatalf("unseeded Next()[%d] = %d, want exact %d", i, got, want)
		}
	}
}

func TestNextDuration(t *testing.T) {
	s := Policy{Initial: 2, Cap: 8}.Sequence()
	if got := s.NextDuration(25 * time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("NextDuration = %v, want 50ms", got)
	}
}

func TestJitterClamped(t *testing.T) {
	if (Policy{Jitter: -1}).jitter() != 0 {
		t.Error("negative jitter not clamped to 0")
	}
	if (Policy{Jitter: 3}).jitter() != 1 {
		t.Error("jitter > 1 not clamped to 1")
	}
	// A fully jittered interval can reach 0; it must clamp to 1.
	s := Policy{Initial: 1, Cap: 2, Jitter: 1}.Seeded(3)
	for i := 0; i < 50; i++ {
		if got := s.Next(); got < 1 {
			t.Fatalf("jittered interval %d < 1", got)
		}
	}
}
