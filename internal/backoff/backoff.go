// Package backoff is the one capped-exponential-backoff implementation
// shared by every layer that retries: reliablelink retransmits on the
// virtual step clock with it, and netsub redials real TCP connections on
// the wall clock with it. Intervals are plain ints in caller-chosen units
// (scheduler steps, milliseconds, ...), so the same policy drives both
// substrates; optional jitter is seeded and deterministic, never drawn
// from global randomness, so executions replay exactly.
package backoff

import "time"

// Policy describes a capped exponential ladder: Initial, Initial*Factor,
// Initial*Factor², ... bounded above by Cap.
type Policy struct {
	// Initial is the first interval; values < 1 are treated as 1.
	Initial int

	// Cap bounds the interval; 0 means no cap.
	Cap int

	// Factor is the per-step multiplier; values < 2 are treated as 2.
	Factor int

	// Jitter spreads each interval uniformly over
	// [interval*(1-Jitter), interval*(1+Jitter)] when a sequence is
	// seeded; 0 (or an unseeded sequence) keeps the ladder exact.
	// Values are clamped to [0, 1].
	Jitter float64
}

func (p Policy) initial() int {
	if p.Initial < 1 {
		return 1
	}
	return p.Initial
}

func (p Policy) factor() int {
	if p.Factor < 2 {
		return 2
	}
	return p.Factor
}

func (p Policy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter > 1:
		return 1
	default:
		return p.Jitter
	}
}

// Interval returns the exact (un-jittered) interval preceding retry
// attempt n (0-based): Initial*Factor^n, capped. Negative n is treated
// as 0.
func (p Policy) Interval(n int) int {
	iv := p.initial()
	for i := 0; i < n; i++ {
		next := iv * p.factor()
		if p.Cap > 0 && next >= p.Cap {
			return p.Cap
		}
		if next < iv { // overflow: saturate
			return maxInt
		}
		iv = next
	}
	if p.Cap > 0 && iv > p.Cap {
		return p.Cap
	}
	return iv
}

const maxInt = int(^uint(0) >> 1)

// Seq walks a policy's ladder statefully: each Next returns the current
// interval and doubles (Factor-multiplies) it up to the cap. The zero
// value is not usable; call Policy.Sequence or Policy.Seeded.
type Seq struct {
	p       Policy
	current int
	rng     uint64 // 0 when unseeded: no jitter
}

// Sequence starts an exact (jitter-free) walk of the ladder.
func (p Policy) Sequence() *Seq {
	return &Seq{p: p, current: p.initial()}
}

// Seeded starts a deterministic jittered walk: each interval is spread by
// Policy.Jitter using a private xorshift stream derived from seed, so two
// sequences with the same seed produce identical intervals.
func (p Policy) Seeded(seed int64) *Seq {
	return &Seq{p: p, current: p.initial(), rng: uint64(seed)*0x9E3779B97F4A7C15 | 1}
}

// Next returns the interval to wait before the next retry and advances
// the ladder. Without jitter the returned values are exactly
// Policy.Interval(0), Interval(1), ...
func (s *Seq) Next() int {
	iv := s.current
	next := iv * s.p.factor()
	if (s.p.Cap > 0 && next > s.p.Cap) || next < iv {
		next = s.p.Cap
		if next <= 0 || next < iv {
			next = maxInt
		}
	}
	s.current = next
	if j := s.p.jitter(); j > 0 && s.rng != 0 {
		// xorshift64*; the top 53 bits give a uniform float in [0, 1).
		s.rng ^= s.rng >> 12
		s.rng ^= s.rng << 25
		s.rng ^= s.rng >> 27
		u := float64(s.rng*2685821657736338717>>11) / (1 << 53)
		spread := float64(iv) * j
		iv = int(float64(iv) - spread + 2*spread*u)
		if iv < 1 {
			iv = 1
		}
	}
	return iv
}

// Reset rewinds the ladder to Initial (the jitter stream keeps advancing,
// as reusing it would correlate retry storms across resets).
func (s *Seq) Reset() { s.current = s.p.initial() }

// NextDuration is Next scaled by unit — the wall-clock flavour used for
// redial delays (e.g. unit = 25*time.Millisecond).
func (s *Seq) NextDuration(unit time.Duration) time.Duration {
	return time.Duration(s.Next()) * unit
}
