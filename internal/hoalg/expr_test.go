package hoalg

import (
	"errors"
	"strings"
	"testing"
)

// TestStringParseRoundTrip: Parse(e.String()) must reproduce e exactly for
// a spectrum of constructed expressions, including the precedence edge
// cases (Or under And, Not over composites, nested windows).
func TestStringParseRoundTrip(t *testing.T) {
	exprs := []*Expr{
		SelfTrusting(),
		AtMostSuspected(2),
		PerRound(1),
		KSetEq3(2),
		BSys(1, 2),
		SendOmission(1),
		SyncCrash(2),
		SharedMemory(1),
		AtomicSnapshot(1),
		ImmediateSnapshot(4),
		And(Identical(), PerRound(1)),
		Or(KSetEq3(2), PerRound(1)),
		And(Or(KSetEq3(2), PerRound(1)), SelfTrusting()),
		Or(And(SelfTrusting(), PerRound(1)), Identical()),
		Not(PerRound(1)),
		Not(And(SelfTrusting(), AtMostSuspected(1))),
		Not(Or(Identical(), Chain())),
		Forever(PerRound(2)),
		Eventually(2, NeverSuspected()),
		Eventually(0, And(SelfTrusting(), AtMostSuspected(1))),
		Eventually(3, Or(KSetEq3(1), SomeoneSeen())),
		And(Eventually(1, PerRound(1)), NoMutualMiss()),
		And(Not(Identical()), Immediacy(), Propagates()),
	}
	for _, e := range exprs {
		s := e.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !back.Equal(e) {
			t.Fatalf("round trip of %q produced %q", s, back)
		}
		// The canonical form is a fixed point: printing the parse must
		// reproduce the same string.
		if again := back.String(); again != s {
			t.Fatalf("canonical form unstable: %q reprints as %q", s, again)
		}
	}
}

// TestParseWhitespaceAndParens: equivalent spellings parse to equal trees.
func TestParseWhitespaceAndParens(t *testing.T) {
	want := And(SelfTrusting(), AtMostSuspected(2))
	for _, s := range []string{
		"selftrust & atmost(2)",
		"selftrust&atmost(2)",
		"  selftrust \t&\n atmost( 2 ) ",
		"(selftrust) & ((atmost(2)))",
	} {
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !got.Equal(want) {
			t.Fatalf("Parse(%q) = %q, want %q", s, got, want)
		}
	}
}

// TestParseErrors: malformed inputs must fail with a structured
// *ParseError carrying a sensible offset — never panic, never succeed.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{"", "expected an expression"},
		{"   ", "expected an expression"},
		{"bogus", "unknown atom"},
		{"selftrust &", "expected an expression"},
		{"& selftrust", "expected an expression"},
		{"selftrust selftrust", "unexpected"},
		{"atmost", `expected '('`},
		{"atmost(", "expected a number"},
		{"atmost(2", `expected ')'`},
		{"atmost()", "expected a number"},
		{"atmost(2,3)", `expected ')'`},
		{"bsys(1)", `expected ','`},
		{"selftrust()", "takes no arguments"},
		{"kset(0)", "kset requires k >= 1"},
		{"atmost(99999999)", "out of range"},
		{"eventually(2 selftrust)", `expected ','`},
		{"eventually(selftrust)", "expected a number"},
		{"forever", `expected '('`},
		{"(selftrust", `expected ')'`},
		{"!", "expected an expression"},
		{strings.Repeat("!", 100) + "selftrust", "nests deeper"},
		{strings.Repeat("(", 100) + "selftrust" + strings.Repeat(")", 100), "nests deeper"},
		{"atmost(2) )", "unexpected"},
	}
	for _, tc := range cases {
		e, err := Parse(tc.src)
		if err == nil {
			t.Fatalf("Parse(%q) succeeded with %q, want error containing %q", tc.src, e, tc.substr)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("Parse(%q) returned %T, want *ParseError", tc.src, err)
		}
		if pe.Pos < 0 || pe.Pos > len(tc.src) {
			t.Fatalf("Parse(%q): offset %d outside input", tc.src, pe.Pos)
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Fatalf("Parse(%q) = %q, want substring %q", tc.src, err, tc.substr)
		}
	}
}

// TestConstructorNormalization pins the algebraic simplifications the
// constructors apply eagerly.
func TestConstructorNormalization(t *testing.T) {
	if got := And(And(SelfTrusting(), PerRound(1)), Identical()); len(got.Kids) != 3 {
		t.Fatalf("nested And not flattened: %q", got)
	}
	if got := Or(Or(SelfTrusting(), PerRound(1)), Identical()); len(got.Kids) != 3 {
		t.Fatalf("nested Or not flattened: %q", got)
	}
	if got := And(SelfTrusting()); !got.Equal(SelfTrusting()) {
		t.Fatalf("unary And not collapsed: %q", got)
	}
	if got := Not(Not(PerRound(1))); !got.Equal(PerRound(1)) {
		t.Fatalf("double negation not cancelled: %q", got)
	}
	if got := Eventually(-3, SelfTrusting()); got.Args[0] != 0 {
		t.Fatalf("negative stab not clamped: %q", got)
	}
	if got := KSetEq3(0); got.Args[0] != 1 {
		t.Fatalf("kset k=0 not clamped: %q", got)
	}
	if got := AtMostSuspected(-1); got.Args[0] != 0 {
		t.Fatalf("negative budget not clamped: %q", got)
	}
}

// TestCatalogRoundTrips: every catalog model's expression must survive the
// parse/String round trip, and Resolve must find it by name.
func TestCatalogRoundTrips(t *testing.T) {
	p := Params{N: 5, F: 1, K: 2, Stab: 1}
	models := Catalog()
	if len(models) < 8 {
		t.Fatalf("catalog has %d models, want >= 8", len(models))
	}
	newCount := 0
	for _, m := range models {
		e := m.Build(p)
		s := e.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("catalog %s: Parse(%q): %v", m.Name, s, err)
		}
		if !back.Equal(e) {
			t.Fatalf("catalog %s: round trip of %q produced %q", m.Name, s, back)
		}
		got, err := Resolve(m.Name, p)
		if err != nil {
			t.Fatalf("Resolve(%s): %v", m.Name, err)
		}
		if !got.Equal(e) {
			t.Fatalf("Resolve(%s) = %q, want %q", m.Name, got, e)
		}
		if m.Ref == "" || m.Desc == "" {
			t.Fatalf("catalog %s: missing Ref/Desc", m.Name)
		}
		if m.New {
			newCount++
		}
	}
	if newCount < 3 {
		t.Fatalf("catalog marks %d models as new, want >= 3", newCount)
	}
	if _, ok := Lookup("no-such-model"); ok {
		t.Fatal("Lookup invented a model")
	}
	if _, err := Resolve("no-such-model", p); err == nil || !strings.Contains(err.Error(), "known models") {
		t.Fatalf("Resolve of junk should list known models, got %v", err)
	}
	if e, err := Resolve("selftrust & atmost(1)", p); err != nil || !e.Equal(SendOmission(1)) {
		t.Fatalf("Resolve of raw expression = %v, %v", e, err)
	}
	names := Names()
	if len(names) != len(models) {
		t.Fatalf("Names() lists %d, catalog has %d", len(names), len(models))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}
