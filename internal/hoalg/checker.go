package hoalg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/predicate"
)

// Compile lowers the expression to a runtime trace checker. The checker is
// structurally compatible with the hand-written constructors in
// internal/predicate: the same *Violation type, and — for every atom —
// the same first-offender round/process attribution (the differential tests
// in diff_test.go hold the compiler to that byte for byte).
func (e *Expr) Compile() predicate.P {
	return compileAt(e, 1)
}

// compileAt compiles e so that atoms only inspect rounds >= from. The whole
// expression starts at from=1; Eventually(stab, kid) raises the window start
// of everything beneath it to stab+1. Threading the window through the atoms
// (instead of slicing the trace) keeps round numbers in violations absolute.
func compileAt(e *Expr, from int) predicate.P {
	name := e.String()
	switch e.Op {
	case OpAnd:
		kids := make([]predicate.P, len(e.Kids))
		for i, k := range e.Kids {
			kids[i] = compileAt(k, from)
		}
		return predicate.And(name, kids...)
	case OpOr:
		kids := make([]predicate.P, len(e.Kids))
		for i, k := range e.Kids {
			kids[i] = compileAt(k, from)
		}
		return predicate.Or(name, kids...)
	case OpNot:
		return predicate.Not(name, compileAt(e.Kids[0], from))
	case OpForever:
		p := compileAt(e.Kids[0], from)
		p.Name = name
		return p
	case OpEventually:
		stab := e.Args[0]
		win := from
		if stab+1 > win {
			win = stab + 1
		}
		inner := compileAt(e.Kids[0], win)
		return predicate.P{Name: name, Check: func(t *core.Trace) error {
			if t.Len() <= stab {
				return nil
			}
			return inner.Check(t)
		}}
	case OpAtom:
		return atomChecker(e, from)
	}
	panic(fmt.Sprintf("hoalg: unknown op %d", e.Op))
}

// atomChecker builds the per-atom checker. Each case mirrors the loop shape
// and Violation fields of its internal/predicate twin exactly, restricted to
// rounds >= from (from == 1 is the unrestricted hand-written behaviour).
func atomChecker(e *Expr, from int) predicate.P {
	name := e.String()
	// perRound iterates the window's round records in order.
	perRound := func(t *core.Trace, fn func(rec *core.RoundRecord) error) error {
		for i := range t.Rounds {
			rec := &t.Rounds[i]
			if rec.R < from {
				continue
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
		return nil
	}
	switch e.Atom {
	case AtomSelfTrust:
		return predicate.P{Name: name, Check: func(t *core.Trace) error {
			return perRound(t, func(rec *core.RoundRecord) error {
				var bad core.PID = -1
				rec.Active.ForEach(func(p core.PID) {
					if bad < 0 && rec.Suspects[p].Has(p) {
						bad = p
					}
				})
				if bad >= 0 {
					return &predicate.Violation{Predicate: name, Round: rec.R, Proc: bad,
						Detail: "process suspects itself"}
				}
				return nil
			})
		}}
	case AtomAtMost:
		f := e.Args[0]
		return predicate.P{Name: name, Check: func(t *core.Trace) error {
			u := windowUnion(t, from)
			if c := u.Count(); c > f {
				return &predicate.Violation{Predicate: name, Proc: -1,
					Detail: fmt.Sprintf("%d distinct processes suspected (%s), budget %d", c, u, f)}
			}
			return nil
		}}
	case AtomPerRound:
		f := e.Args[0]
		return predicate.P{Name: name, Check: func(t *core.Trace) error {
			return perRound(t, func(rec *core.RoundRecord) error {
				var bad core.PID = -1
				rec.Active.ForEach(func(p core.PID) {
					if bad < 0 && rec.Suspects[p].Count() > f {
						bad = p
					}
				})
				if bad >= 0 {
					return &predicate.Violation{Predicate: name, Round: rec.R, Proc: bad,
						Detail: fmt.Sprintf("|D|=%d > f=%d (%s)", rec.Suspects[bad].Count(), f, rec.Suspects[bad])}
				}
				return nil
			})
		}}
	case AtomKSet:
		k := e.Args[0]
		return predicate.P{Name: name, Check: func(t *core.Trace) error {
			return perRound(t, func(rec *core.RoundRecord) error {
				u := t.SuspectUnion(rec.R)
				in := t.SuspectIntersection(rec.R).Intersect(u)
				unc := u.Diff(in)
				if unc.Count() >= k {
					return &predicate.Violation{Predicate: name, Round: rec.R, Proc: -1,
						Detail: fmt.Sprintf("uncertainty %s has size %d ≥ k=%d", unc, unc.Count(), k)}
				}
				return nil
			})
		}}
	case AtomNoMutualMiss:
		return predicate.P{Name: name, Check: func(t *core.Trace) error {
			return perRound(t, func(rec *core.RoundRecord) error {
				var badI, badJ core.PID = -1, -1
				rec.Active.ForEach(func(i core.PID) {
					if badI >= 0 {
						return
					}
					rec.Suspects[i].ForEach(func(j core.PID) {
						if badI >= 0 || !rec.Active.Has(j) {
							return
						}
						if rec.Suspects[j].Has(i) {
							badI, badJ = i, j
						}
					})
				})
				if badI >= 0 {
					return &predicate.Violation{Predicate: name, Round: rec.R, Proc: badI,
						Detail: fmt.Sprintf("processes %d and %d suspect each other", badI, badJ)}
				}
				return nil
			})
		}}
	case AtomSomeoneSeen:
		return predicate.P{Name: name, Check: func(t *core.Trace) error {
			return perRound(t, func(rec *core.RoundRecord) error {
				u := t.SuspectUnion(rec.R)
				if u.Count() >= t.N {
					return &predicate.Violation{Predicate: name, Round: rec.R, Proc: -1,
						Detail: "every process is suspected by someone"}
				}
				return nil
			})
		}}
	case AtomIdentical:
		return predicate.P{Name: name, Check: func(t *core.Trace) error {
			return perRound(t, func(rec *core.RoundRecord) error {
				var first core.Set
				var bad core.PID = -1
				got := false
				rec.Active.ForEach(func(p core.PID) {
					if bad >= 0 {
						return
					}
					if !got {
						first, got = rec.Suspects[p], true
						return
					}
					if !rec.Suspects[p].Equal(first) {
						bad = p
					}
				})
				if bad >= 0 {
					return &predicate.Violation{Predicate: name, Round: rec.R, Proc: bad,
						Detail: fmt.Sprintf("D(%d)=%s differs from %s", bad, rec.Suspects[bad], first)}
				}
				return nil
			})
		}}
	case AtomChain:
		return predicate.P{Name: name, Check: func(t *core.Trace) error {
			return perRound(t, func(rec *core.RoundRecord) error {
				members := rec.Active.Members()
				for a := 0; a < len(members); a++ {
					for b := a + 1; b < len(members); b++ {
						di, dj := rec.Suspects[members[a]], rec.Suspects[members[b]]
						if !di.IsSubset(dj) && !dj.IsSubset(di) {
							return &predicate.Violation{Predicate: name, Round: rec.R, Proc: members[a],
								Detail: fmt.Sprintf("D(%d)=%s and D(%d)=%s incomparable",
									members[a], di, members[b], dj)}
						}
					}
				}
				return nil
			})
		}}
	case AtomImmediacy:
		return predicate.P{Name: name, Check: func(t *core.Trace) error {
			return perRound(t, func(rec *core.RoundRecord) error {
				var badI, badJ core.PID = -1, -1
				rec.Active.ForEach(func(i core.PID) {
					if badI >= 0 {
						return
					}
					rec.Active.ForEach(func(j core.PID) {
						if badI >= 0 || i == j || rec.Suspects[i].Has(j) {
							return
						}
						if !rec.Suspects[i].IsSubset(rec.Suspects[j]) {
							badI, badJ = i, j
						}
					})
				})
				if badI >= 0 {
					return &predicate.Violation{Predicate: name, Round: rec.R, Proc: badI,
						Detail: fmt.Sprintf("hears %d but D(%d)=%s ⊄ D(%d)=%s",
							badJ, badI, rec.Suspects[badI], badJ, rec.Suspects[badJ])}
				}
				return nil
			})
		}}
	case AtomPropagates:
		return predicate.P{Name: name, Check: func(t *core.Trace) error {
			for r := from; r < t.Len(); r++ {
				u := t.SuspectUnion(r)
				next := t.Round(r + 1)
				var bad core.PID = -1
				next.Active.ForEach(func(k core.PID) {
					if bad < 0 && !u.IsSubset(next.Suspects[k]) {
						bad = k
					}
				})
				if bad >= 0 {
					return &predicate.Violation{Predicate: name, Round: r + 1, Proc: bad,
						Detail: fmt.Sprintf("D(%d,%d)=%s does not contain round-%d union %s",
							bad, r+1, next.Suspects[bad], r, u)}
				}
			}
			return nil
		}}
	case AtomNeverSusp:
		return predicate.P{Name: name, Check: func(t *core.Trace) error {
			if t.Len() < from {
				return nil
			}
			if c := core.FullSet(t.N).Diff(windowUnion(t, from)); !c.Empty() {
				return nil
			}
			detail := "every process was suspected at some round"
			if from > 1 {
				detail = fmt.Sprintf("every process suspected after round %d", from-1)
			}
			return &predicate.Violation{Predicate: name, Proc: -1, Detail: detail}
		}}
	case AtomBSys:
		f, tb := e.Args[0], e.Args[1]
		return predicate.P{Name: name, Check: func(tr *core.Trace) error {
			return perRound(tr, func(rec *core.RoundRecord) error {
				q := core.NewSet(tr.N)
				var bad core.PID = -1
				rec.Active.ForEach(func(p core.PID) {
					c := rec.Suspects[p].Count()
					if c > tb {
						bad = p
					} else if c > f {
						q.Add(p)
					}
				})
				if bad >= 0 {
					return &predicate.Violation{Predicate: name, Round: rec.R, Proc: bad,
						Detail: fmt.Sprintf("|D|=%d exceeds even the t=%d budget", rec.Suspects[bad].Count(), tb)}
				}
				if q.Count() > tb {
					return &predicate.Violation{Predicate: name, Round: rec.R, Proc: -1,
						Detail: fmt.Sprintf("%d processes exceed the f budget, allowed ≤ t=%d", q.Count(), tb)}
				}
				return nil
			})
		}}
	}
	panic(fmt.Sprintf("hoalg: unknown atom %d", e.Atom))
}

// windowUnion is ⋃_{r >= from} ⋃_i D(i,r); at from == 1 it equals
// t.CumulativeSuspects(t.Len()).
func windowUnion(t *core.Trace, from int) core.Set {
	u := core.NewSet(t.N)
	for i := range t.Rounds {
		if t.Rounds[i].R < from {
			continue
		}
		u = u.Union(t.SuspectUnion(t.Rounds[i].R))
	}
	return u
}
