package hoalg

import (
	"errors"
	"testing"
)

// FuzzParseExpr fuzzes the expression parser. Invariants:
//
//   - Parse never panics (arbitrary input, arbitrary nesting);
//   - a failed parse yields a structured *ParseError with an in-range
//     offset;
//   - a successful parse round-trips: the canonical String form parses
//     back to an Equal tree and is itself a fixed point of printing.
//
// The seed corpus in testdata/fuzz/FuzzParseExpr covers every atom, the
// operators, window syntax, and a sample of malformed inputs; `go test`
// replays it on every run, so the corpus doubles as a regression suite.
func FuzzParseExpr(f *testing.F) {
	seeds := []string{
		"selftrust",
		"atmost(2)",
		"perround(1) & someoneseen",
		"selftrust & atmost(1) & propagates",
		"kset(2) | perround(1)",
		"!(identical | chain)",
		"eventually(2, selftrust & atmost(1))",
		"forever(nomutualmiss)",
		"bsys(1, 2) | eventually(3, neversusp)",
		"selftrust & chain & immediacy & perround(3)",
		"!!!selftrust",
		"((atmost(1)))",
		"",
		"atmost(",
		"kset(0)",
		"unknownatom(1)",
		"eventually(99999999, selftrust)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse(%q) returned %T (%v), want *ParseError", src, err, err)
			}
			if pe.Pos < 0 || pe.Pos > len(src) {
				t.Fatalf("Parse(%q): error offset %d outside [0,%d]", src, pe.Pos, len(src))
			}
			return
		}
		s := e.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("canonical form %q of %q fails to reparse: %v", s, src, err)
		}
		if !back.Equal(e) {
			t.Fatalf("round trip of %q: %q parsed back as %q", src, s, back)
		}
		if again := back.String(); again != s {
			t.Fatalf("canonical form of %q unstable: %q reprints as %q", src, s, again)
		}
	})
}
