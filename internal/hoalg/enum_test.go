package hoalg

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestOracleTracesSatisfyModel: sampled oracle runs are the plain-run
// counterpart of the exhaustive enumeration — every trace a model's
// compiled oracle produces must satisfy that model's compiled checker.
func TestOracleTracesSatisfyModel(t *testing.T) {
	p := Params{N: 3, F: 1, K: 2, Stab: 1}
	for _, m := range Catalog() {
		e := m.Build(p)
		pred := e.Compile()
		for seed := int64(1); seed <= 20; seed++ {
			oracle, err := e.Oracle(p.N, seed)
			if err != nil {
				t.Fatalf("%s: Oracle: %v", m.Name, err)
			}
			tr, err := core.CollectTrace(p.N, 4, oracle)
			if err != nil {
				t.Fatalf("%s seed %d: collect: %v", m.Name, seed, err)
			}
			if err := pred.Check(tr); err != nil {
				t.Fatalf("%s seed %d: oracle trace escapes its own model: %v\n%s",
					m.Name, seed, err, tr)
			}
		}
	}
}

// TestEnumBranchesSplitsOr: a top-level disjunction yields one enumeration
// branch per disjunct (in order), anything else a single branch.
func TestEnumBranchesSplitsOr(t *testing.T) {
	e := Or(KSetEq3(2), PerRound(1), Identical())
	branches, err := e.EnumBranches(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 3 {
		t.Fatalf("want 3 branches, got %d", len(branches))
	}
	for i, b := range branches {
		if !b.Expr.Equal(e.Kids[i]) {
			t.Fatalf("branch %d is %q, want %q", i, b.Expr, e.Kids[i])
		}
		if b.Enum == nil {
			t.Fatalf("branch %d has no enumerator", i)
		}
	}
	single, err := PerRound(1).EnumBranches(3)
	if err != nil || len(single) != 1 {
		t.Fatalf("non-disjunction should be one branch: %d, %v", len(single), err)
	}
}

// TestCompileEnumRejections: disjunctions need EnumBranches, kset caps n at
// 3, and any branch failing to compile fails the whole split.
func TestCompileEnumRejections(t *testing.T) {
	if _, err := Or(KSetEq3(2), PerRound(1)).CompileEnum(3); err == nil || !strings.Contains(err.Error(), "EnumBranches") {
		t.Fatalf("CompileEnum accepted a disjunction: %v", err)
	}
	if _, err := KSetEq3(2).CompileEnum(4); err == nil || !strings.Contains(err.Error(), "n=4") {
		t.Fatalf("kset enumeration accepted n=4: %v", err)
	}
	if _, err := Or(KSetEq3(2), PerRound(1)).EnumBranches(4); err == nil {
		t.Fatal("EnumBranches accepted a kset branch at n=4")
	}
}

// TestCompileEnumWindowSemantics: an eventually(stab, ...) leaves rounds
// up to stab unconstrained and enforces the body from stab+1 on.
func TestCompileEnumWindowSemantics(t *testing.T) {
	const n = 3
	enum, err := Eventually(1, AtMostSuspected(0)).CompileEnum(n)
	if err != nil {
		t.Fatal(err)
	}
	st := EnumState{R: 1, Active: core.FullSet(n),
		Suspected: core.NewSet(n), PrevUnion: core.NewSet(n)}
	round1 := enum(st)
	nonEmpty := 0
	for _, plan := range round1 {
		for _, d := range plan.Suspects {
			if !d.Empty() {
				nonEmpty++
				break
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatal("round 1 is inside the window and should allow suspicions")
	}
	st.R = 2
	for _, plan := range enum(st) {
		for _, d := range plan.Suspects {
			if !d.Empty() {
				t.Fatalf("round 2 is past stab=1; atmost(0) must forbid suspicions, got %v", plan.Suspects)
			}
		}
	}
}

// TestCompileEnumNegatedAtom: negation on an atom enumerates per-round
// violations — every emitted plan must break the atom that round.
func TestCompileEnumNegatedAtom(t *testing.T) {
	const n = 3
	enum, err := Not(PerRound(0)).CompileEnum(n)
	if err != nil {
		t.Fatal(err)
	}
	plans := enum(EnumState{R: 1, Active: core.FullSet(n),
		Suspected: core.NewSet(n), PrevUnion: core.NewSet(n)})
	if len(plans) == 0 {
		t.Fatal("negated perround(0) admits no plans")
	}
	for _, plan := range plans {
		broke := false
		for _, d := range plan.Suspects {
			if d.Count() > 0 {
				broke = true
			}
		}
		if !broke {
			t.Fatalf("plan %v satisfies perround(0) instead of violating it", plan.Suspects)
		}
	}
}
