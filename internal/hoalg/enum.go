package hoalg

import (
	"fmt"

	"repro/internal/core"
)

// EnumState is what a compiled enumerator may condition on: the round, the
// processes still emitting, and the suspicion history the model's predicate
// constrains (cumulative for eq. (1)-style total budgets, previous-round
// union for eq. (2)-style propagation).
type EnumState struct {
	// R is the round being planned (starts at 1).
	R int

	// Active is the set of processes that will emit this round unless the
	// plan crashes them.
	Active core.Set

	// Suspected is ⋃_{r'<R} ⋃_i D(i,r'), every process suspected so far.
	Suspected core.Set

	// PrevUnion is ⋃_i D(i,R-1), the previous round's suspicion union
	// (empty in round 1).
	PrevUnion core.Set

	// Unions, when non-nil, is the full per-round history:
	// Unions[i] = ⋃_j D(j,i+1) for rounds 1..R-1. Only windowed
	// (eventually) constraints consult it; a driver that does not record
	// it degrades those windows to the cumulative Suspected set.
	Unions []core.Set
}

// Enum lists every round plan the model allows from the given state. The
// list must be non-empty for satisfiable models, deterministic, and in a
// stable order — the mc choice tree is built from its indices.
type Enum func(st EnumState) []core.RoundPlan

// Branch pairs one top-level disjunct of an expression with its compiled
// enumerator (see EnumBranches).
type Branch struct {
	Expr *Expr
	Enum Enum
}

// CompileEnum lowers the expression to an exhaustive per-round plan
// enumerator for n processes. The enumeration strategy is chosen from the
// expression's shape:
//
//   - a conjunction containing propagates (eq. (2)) compiles to the
//     crash-style generator: previously suspected processes really crash,
//     their suspicion is carried by every live process, and fresh
//     suspicions spend the atmost budget — the same family EnumSyncCrash
//     produced by hand;
//   - any other conjunction compiles to a filtered product: per process,
//     every subset of the other active processes up to the tightest
//     per-round cap the conjuncts imply, filtered by the per-round
//     semantics of each conjunct.
//
// The compiled enumerators reproduce the four bespoke internal/adversary
// families byte for byte (plan lists in identical order) on the reachable
// states the mc explorer visits; the cross-validation tests in
// internal/adversary hold them to that.
//
// A top-level disjunction is rejected: one per-round plan family cannot
// soundly enumerate an Or (plans could mix branches across rounds and the
// resulting trace satisfy neither disjunct) — use EnumBranches and explore
// each branch separately. Negation is supported on atoms only and is
// enumerated per round (every round violates the atom), a sound
// strengthening of the whole-trace semantics. n is capped at 4 (3 when the
// expression contains kset) to keep the per-round families small.
func (e *Expr) CompileEnum(n int) (Enum, error) {
	if e.Op == OpOr {
		return nil, fmt.Errorf("hoalg: cannot enumerate disjunction %q as one plan family (rounds could mix branches and satisfy neither); enumerate each branch via EnumBranches", e)
	}
	maxN := 4
	if e.containsAtom(AtomKSet) {
		maxN = 3
	}
	if n < 1 || n > maxN {
		return nil, fmt.Errorf("hoalg: enumerating %q supports 1 <= n <= %d, got n=%d", e, maxN, n)
	}
	conjs, err := collectConjuncts(e, false, 0, nil)
	if err != nil {
		return nil, err
	}
	for _, cj := range conjs {
		if cj.atom.Atom == AtomPropagates && !cj.neg {
			return compileCrashEnum(conjs, cj, n)
		}
	}
	return compileProductEnum(conjs, n), nil
}

// EnumBranches compiles each top-level disjunct separately (a single branch
// for non-disjunctions). Exploring every branch covers a sound
// under-approximation of the Or: each branch's traces satisfy that branch
// and hence the disjunction.
func (e *Expr) EnumBranches(n int) ([]Branch, error) {
	kids := []*Expr{e}
	if e.Op == OpOr {
		kids = e.Kids
	}
	out := make([]Branch, 0, len(kids))
	for _, k := range kids {
		en, err := k.CompileEnum(n)
		if err != nil {
			return nil, err
		}
		out = append(out, Branch{Expr: k, Enum: en})
	}
	return out, nil
}

// conjunct is one atom of a flattened conjunction: possibly negated,
// constrained only from round stab+1 on (stab 0 = every round).
type conjunct struct {
	atom *Expr
	neg  bool
	stab int
}

func collectConjuncts(e *Expr, neg bool, stab int, out []conjunct) ([]conjunct, error) {
	switch e.Op {
	case OpAtom:
		if neg && e.Atom == AtomSelfTrust {
			return nil, fmt.Errorf("hoalg: cannot enumerate !selftrust (enumerated plans never self-suspect)")
		}
		if neg && e.Atom == AtomPropagates {
			return nil, fmt.Errorf("hoalg: cannot enumerate !propagates")
		}
		return append(out, conjunct{atom: e, neg: neg, stab: stab}), nil
	case OpAnd:
		var err error
		for _, k := range e.Kids {
			if out, err = collectConjuncts(k, neg, stab, out); err != nil {
				return nil, err
			}
		}
		return out, nil
	case OpNot:
		if e.Kids[0].Op != OpAtom {
			return nil, fmt.Errorf("hoalg: enumeration supports negation on atoms only, got !(%s)", e.Kids[0])
		}
		return collectConjuncts(e.Kids[0], !neg, stab, out)
	case OpForever:
		return collectConjuncts(e.Kids[0], neg, stab, out)
	case OpEventually:
		if s := e.Args[0]; s > stab {
			stab = s
		}
		return collectConjuncts(e.Kids[0], neg, stab, out)
	case OpOr:
		return nil, fmt.Errorf("hoalg: nested disjunction %q is not enumerable; lift | to the top level", e)
	}
	return nil, fmt.Errorf("hoalg: unknown op %d", e.Op)
}

// perProcCap is the tightest per-process suspect-set size any active
// conjunct implies this round, or -1 for unbounded. Capping the generated
// subsets (rather than only filtering) is what keeps product enumeration
// tractable — and byte-identical to the bespoke generators, since a
// size-capped subset list is an order-preserving subsequence of the
// unbounded one.
func perProcCap(conjs []conjunct, st EnumState) int {
	c := -1
	tighten := func(f int) {
		if c < 0 || f < c {
			c = f
		}
	}
	for _, cj := range conjs {
		if cj.neg || st.R <= cj.stab {
			continue
		}
		switch cj.atom.Atom {
		case AtomPerRound, AtomAtMost:
			tighten(cj.atom.Args[0])
		case AtomBSys:
			tighten(cj.atom.Args[1])
		}
	}
	return c
}

func compileProductEnum(conjs []conjunct, n int) Enum {
	return func(st EnumState) []core.RoundPlan {
		per := make(map[core.PID][]core.Set)
		bound := perProcCap(conjs, st)
		st.Active.ForEach(func(p core.PID) {
			per[p] = subsets(n, without(st.Active, p), bound)
		})
		return tuples(n, st.Active, per, func(ds []core.Set) bool {
			return roundAdmits(conjs, st, st.Active, ds, n)
		})
	}
}

// compileCrashEnum is the eq. (2) strategy, replicating EnumSyncCrash's
// generation: a process suspected in round r really crashes at r+1, every
// live process carries the cumulative suspicions plus the crashes, and the
// adversary spends what remains of the atmost budget on fresh suspicions.
// The remaining conjuncts act as a plan filter.
func compileCrashEnum(conjs []conjunct, prop conjunct, n int) (Enum, error) {
	if prop.stab != 0 {
		return nil, fmt.Errorf("hoalg: cannot enumerate a windowed propagates (crash dynamics must hold from round 1)")
	}
	f := -1
	for _, cj := range conjs {
		if !cj.neg && cj.stab == 0 && cj.atom.Atom == AtomAtMost {
			if b := cj.atom.Args[0]; f < 0 || b < f {
				f = b
			}
		}
	}
	if f < 0 {
		return nil, fmt.Errorf("hoalg: enumerating propagates requires a conjoined atmost(f) total budget")
	}
	return func(st EnumState) []core.RoundPlan {
		// Processes fully suspected last round crash now; they stop
		// emitting and everyone must keep suspecting them.
		crashes := st.PrevUnion.Intersect(st.Active)
		carried := st.Suspected // dead forever-suspected set
		live := st.Active.Diff(crashes)

		// The adversary picks which still-untouched processes start
		// crashing this round, within the total budget f.
		room := f - st.Suspected.Count()
		if room < 0 {
			room = 0
		}
		fresh := subsets(n, live.Diff(st.Suspected), room)

		var out []core.RoundPlan
		for _, newSusp := range fresh {
			per := make(map[core.PID][]core.Set)
			live.ForEach(func(p core.PID) {
				var opts []core.Set
				for _, miss := range subsets(n, without(newSusp, p), -1) {
					opts = append(opts, carried.Union(crashes).Union(miss))
				}
				per[p] = opts
			})
			for _, pl := range tuples(n, live, per, func(ds []core.Set) bool {
				return roundAdmits(conjs, st, live, ds, n)
			}) {
				pl.Crashes = crashes.Clone()
				// Crashed processes carry empty D entries already (they
				// do not emit), matching the engine contract.
				out = append(out, pl)
			}
		}
		return out
	}, nil
}

// roundAdmits evaluates every in-window conjunct against one candidate
// assignment of suspect sets for this round. active is the set the round's
// quantifiers range over; ds is indexed by pid.
func roundAdmits(conjs []conjunct, st EnumState, active core.Set, ds []core.Set, n int) bool {
	for _, cj := range conjs {
		if st.R <= cj.stab {
			continue
		}
		ok := atomAdmits(cj, st, active, ds, n)
		if cj.neg {
			ok = !ok
		}
		if !ok {
			return false
		}
	}
	return true
}

// windowCumulative is the suspicion union over past rounds > stab.
func windowCumulative(st EnumState, stab, n int) core.Set {
	if stab == 0 || st.Unions == nil {
		return st.Suspected
	}
	u := core.NewSet(n)
	for i := stab; i < len(st.Unions); i++ {
		u = u.Union(st.Unions[i])
	}
	return u
}

func atomAdmits(cj conjunct, st EnumState, active core.Set, ds []core.Set, n int) bool {
	switch a := cj.atom; a.Atom {
	case AtomSelfTrust:
		ok := true
		active.ForEach(func(p core.PID) {
			if ds[p].Has(p) {
				ok = false
			}
		})
		return ok
	case AtomAtMost:
		u := windowCumulative(st, cj.stab, n)
		active.ForEach(func(p core.PID) { u = u.Union(ds[p]) })
		return u.Count() <= a.Args[0]
	case AtomPerRound:
		ok := true
		active.ForEach(func(p core.PID) {
			if ds[p].Count() > a.Args[0] {
				ok = false
			}
		})
		return ok
	case AtomKSet:
		var union, inter core.Set
		first := true
		active.ForEach(func(p core.PID) {
			if first {
				union, inter, first = ds[p].Clone(), ds[p].Clone(), false
				return
			}
			union = union.Union(ds[p])
			inter = inter.Intersect(ds[p])
		})
		if first {
			return true
		}
		return union.Diff(inter).Count() < a.Args[0]
	case AtomNoMutualMiss:
		ok := true
		active.ForEach(func(i core.PID) {
			ds[i].ForEach(func(j core.PID) {
				if active.Has(j) && ds[j].Has(i) {
					ok = false
				}
			})
		})
		return ok
	case AtomSomeoneSeen:
		u := core.NewSet(n)
		active.ForEach(func(p core.PID) { u = u.Union(ds[p]) })
		return u.Count() < n
	case AtomIdentical:
		var first core.Set
		ok, got := true, false
		active.ForEach(func(p core.PID) {
			if !got {
				first, got = ds[p], true
				return
			}
			if !ds[p].Equal(first) {
				ok = false
			}
		})
		return ok
	case AtomChain:
		members := active.Members()
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				di, dj := ds[members[x]], ds[members[y]]
				if !di.IsSubset(dj) && !dj.IsSubset(di) {
					return false
				}
			}
		}
		return true
	case AtomImmediacy:
		ok := true
		active.ForEach(func(i core.PID) {
			active.ForEach(func(j core.PID) {
				if i == j || ds[i].Has(j) {
					return
				}
				if !ds[i].IsSubset(ds[j]) {
					ok = false
				}
			})
		})
		return ok
	case AtomPropagates:
		// Round stab+1 opens the window: there is no in-window previous
		// round to propagate from (and in round 1 PrevUnion is empty).
		if st.R <= cj.stab+1 {
			return true
		}
		ok := true
		active.ForEach(func(p core.PID) {
			if !st.PrevUnion.IsSubset(ds[p]) {
				ok = false
			}
		})
		return ok
	case AtomNeverSusp:
		u := windowCumulative(st, cj.stab, n)
		active.ForEach(func(p core.PID) { u = u.Union(ds[p]) })
		return u.Count() < n
	case AtomBSys:
		f, t := a.Args[0], a.Args[1]
		over := 0
		ok := true
		active.ForEach(func(p core.PID) {
			c := ds[p].Count()
			if c > t {
				ok = false
			} else if c > f {
				over++
			}
		})
		return ok && over <= t
	}
	return false
}

// without returns pool minus p.
func without(pool core.Set, p core.PID) core.Set {
	s := pool.Clone()
	s.Remove(p)
	return s
}

// subsets lists every subset of pool, smallest first, as n-sized sets.
// The order is stable: subsets are generated by increasing bitmask over
// pool's members.
func subsets(n int, pool core.Set, maxSize int) []core.Set {
	members := pool.Members()
	out := []core.Set{}
	for mask := 0; mask < 1<<len(members); mask++ {
		s := core.NewSet(n)
		for b, p := range members {
			if mask&(1<<b) != 0 {
				s.Add(p)
			}
		}
		if maxSize < 0 || s.Count() <= maxSize {
			out = append(out, s)
		}
	}
	return out
}

// tuples builds one plan per combination of per-process suspect sets,
// odometer order, keeping those ok admits. perProc[i] lists the candidate
// D(i,r) for live process i; inactive processes get empty sets.
func tuples(n int, active core.Set, perProc map[core.PID][]core.Set, ok func(ds []core.Set) bool) []core.RoundPlan {
	lives := active.Members()
	idx := make([]int, len(lives))
	var out []core.RoundPlan
	for {
		ds := make([]core.Set, n)
		for i := range ds {
			ds[i] = core.NewSet(n)
		}
		for j, p := range lives {
			ds[p] = perProc[p][idx[j]].Clone()
		}
		if ok == nil || ok(ds) {
			out = append(out, core.RoundPlan{Suspects: ds})
		}
		j := len(idx) - 1
		for j >= 0 && idx[j]+1 == len(perProc[lives[j]]) {
			idx[j] = 0
			j--
		}
		if j < 0 {
			return out
		}
		idx[j]++
	}
}
