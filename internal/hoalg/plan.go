package hoalg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faultnet"
)

// CompilePlan lowers the expression to a seeded chaos fault plan for n
// processes.
//
// For a negation-free expression the plan is honest: benign noise (short
// delays, duplicates) the reliable links absorb, plus — when the expression
// leaves room — a rate-1.0 send-omission component whose sender set is
// small enough that the induced suspicions D(i,r) = senders \ {i} still
// satisfy every conjunct. A permanently omitting sender is exactly a
// send-omission-faulty process in the paper's eq. (1) sense: everyone else
// times out on it each round and suspects it, it keeps hearing everyone.
// That reading assumes lock-step rounds — campaigns running a compiled plan
// should set chaos.Config.SyncRounds, or arrival-order slack adds
// suspicions the plan never chose.
//
// For a top-level negation !e the plan is a breaker: the omitting sender
// set is sized so the induced suspicions must violate e (e.g. f+1 senders
// against a budget of f). Executions under the plan then violate e — and
// satisfy !e — deterministically. Expressions only violable by
// self-suspicion or non-uniform misses (selftrust, immediacy) are rejected,
// as are nested negations.
//
// The plan is a pure function of (expression, n, seed).
func (e *Expr) CompilePlan(n int, seed int64) (faultnet.Plan, error) {
	if n < 2 {
		return faultnet.Plan{}, fmt.Errorf("hoalg: fault plans need n >= 2, got n=%d", n)
	}
	r := faultnet.NewRNG(seed)
	p := faultnet.Plan{Seed: seed}
	// Benign noise first: short delays (well under any watchdog) and
	// duplicate deliveries. Neither can induce a suspicion on its own.
	p.Components = append(p.Components,
		faultnet.Component{Kind: faultnet.Delay, Rate: 0.2 + 0.3*r.Float(),
			MaxDelay: 1 + r.Intn(8), Name: "noise-delay"},
		faultnet.Component{Kind: faultnet.Duplicate, Rate: 0.1 + 0.2*r.Float(),
			Copies: 1 + r.Intn(2), Name: "noise-dup"},
	)
	if e.Op == OpNot {
		count, err := breakerSenders(e.Kids[0], n)
		if err != nil {
			return faultnet.Plan{}, err
		}
		p.Components = append(p.Components, faultnet.Component{
			Kind: faultnet.SendOmission, Rate: 1.0,
			Senders: pickPIDs(r, n, count), Name: "breaker"})
		return p, nil
	}
	allow, err := honestAllowance(e, n)
	if err != nil {
		return faultnet.Plan{}, err
	}
	if allow > n-1 {
		allow = n - 1
	}
	if allow > 0 {
		count := 1 + r.Intn(allow)
		p.Components = append(p.Components, faultnet.Component{
			Kind: faultnet.SendOmission, Rate: 1.0,
			Senders: pickPIDs(r, n, count), Name: "honest-omission"})
	}
	return p, nil
}

// honestAllowance is the largest sender-set size s for which rate-1.0
// omission from s processes — inducing D(i,r) = senders \ {i} every round —
// still satisfies the expression. 0 means noise only.
func honestAllowance(e *Expr, n int) (int, error) {
	switch e.Op {
	case OpAtom:
		switch e.Atom {
		case AtomSelfTrust, AtomImmediacy:
			// Loopback is fault-free, so nobody self-suspects; missing
			// the same senders keeps D(i) ⊆ D(j) whenever i hears j.
			return n - 1, nil
		case AtomAtMost, AtomPerRound:
			return e.Args[0], nil
		case AtomBSys:
			return e.Args[0], nil
		case AtomKSet:
			// The uncertainty of D(i,r) = S \ {i} is exactly S.
			return e.Args[0] - 1, nil
		case AtomNoMutualMiss, AtomChain:
			// Two omitting senders already suspect each other / produce
			// incomparable sets S\{s1}, S\{s2}.
			return 1, nil
		case AtomSomeoneSeen, AtomNeverSusp:
			return n - 1, nil
		case AtomIdentical, AtomPropagates:
			// Any sender s yields D(s)=S\{s} ≠ D(i)=S, and s (still
			// live) never adopts its own suspicion.
			return 0, nil
		}
	case OpAnd:
		m := n - 1
		for _, k := range e.Kids {
			a, err := honestAllowance(k, n)
			if err != nil {
				return 0, err
			}
			if a < m {
				m = a
			}
		}
		return m, nil
	case OpOr:
		m := -1
		for _, k := range e.Kids {
			a, err := honestAllowance(k, n)
			if err != nil {
				return 0, err
			}
			if a > m {
				m = a
			}
		}
		return m, nil
	case OpNot:
		return 0, fmt.Errorf("hoalg: honest plans require a negation-free expression (a top-level ! compiles a violating plan instead): %s", e)
	case OpForever, OpEventually:
		return honestAllowance(e.Kids[0], n)
	}
	return 0, fmt.Errorf("hoalg: unknown op %d", e.Op)
}

// breakerSenders is the rate-1.0 omission sender count that forces every
// execution to violate the expression. Violation is monotone in the sender
// count for every supported atom (larger S keeps each listed witness), so
// And takes the cheapest violable conjunct and Or the maximum over
// branches.
func breakerSenders(e *Expr, n int) (int, error) {
	switch e.Op {
	case OpAtom:
		switch e.Atom {
		case AtomSelfTrust:
			return 0, fmt.Errorf("hoalg: cannot violate selftrust with message faults (loopback delivery is fault-free)")
		case AtomImmediacy:
			return 0, fmt.Errorf("hoalg: cannot violate immediacy with uniform omissions (shared sender sets preserve view containment)")
		case AtomAtMost:
			// |S| = f+1 distinct processes get suspected.
			return needSenders(e.Args[0]+1, n, e)
		case AtomPerRound:
			// A process outside S sees |D| = |S| = f+1 > f.
			f := e.Args[0]
			if f+1 > n-1 {
				return 0, fmt.Errorf("hoalg: violating %q needs %d omitting senders plus an observer, but n=%d", e, f+1, n)
			}
			return f + 1, nil
		case AtomKSet:
			// Uncertainty of D(i)=S\{i} is exactly S; |S| = k reaches it.
			return needSenders(e.Args[0], n, e)
		case AtomIdentical:
			return 1, nil
		case AtomPropagates:
			// The suspected sender stays live and never suspects itself.
			return 1, nil
		case AtomChain, AtomNoMutualMiss:
			return needSenders(2, n, e)
		case AtomSomeoneSeen, AtomNeverSusp:
			return n, nil
		case AtomBSys:
			f, t := e.Args[0], e.Args[1]
			if t+1 <= n-1 {
				// An observer outside S exceeds even the t budget.
				return t + 1, nil
			}
			if n-1 > f && n > t {
				// Everyone omits: all n processes exceed f, and n > t of
				// them is too many.
				return n, nil
			}
			return 0, fmt.Errorf("hoalg: cannot violate %q with omissions at n=%d", e, n)
		}
	case OpAnd:
		best := -1
		var firstErr error
		for _, k := range e.Kids {
			c, err := breakerSenders(k, n)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if best < 0 || c < best {
				best = c
			}
		}
		if best < 0 {
			return 0, fmt.Errorf("hoalg: no conjunct of %q is violable by omissions: %w", e, firstErr)
		}
		return best, nil
	case OpOr:
		m := 0
		for _, k := range e.Kids {
			c, err := breakerSenders(k, n)
			if err != nil {
				return 0, err
			}
			if c > m {
				m = c
			}
		}
		return m, nil
	case OpNot:
		return 0, fmt.Errorf("hoalg: cannot compile a violating plan for a nested negation: %s", e)
	case OpForever, OpEventually:
		// The breaker violates in every round, so it violates the window
		// too — provided the execution runs past stab rounds.
		return breakerSenders(e.Kids[0], n)
	}
	return 0, fmt.Errorf("hoalg: unknown op %d", e.Op)
}

func needSenders(count, n int, e *Expr) (int, error) {
	if count > n {
		return 0, fmt.Errorf("hoalg: violating %q needs %d omitting senders but n=%d", e, count, n)
	}
	return count, nil
}

// pickPIDs draws count distinct pids via a seeded Fisher–Yates shuffle.
func pickPIDs(r *faultnet.RNG, n, count int) []core.PID {
	pids := make([]core.PID, n)
	for i := range pids {
		pids[i] = core.PID(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		pids[i], pids[j] = pids[j], pids[i]
	}
	return pids[:count]
}
