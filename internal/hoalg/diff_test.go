package hoalg

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/predicate"
)

// This file differentially tests the checker compiler: for every ported
// predicate, the compiled checker and the hand-written internal/predicate
// twin must agree on the verdict of every trace — and, when both reject,
// on the Violation's round and process attribution (the predicate names
// differ by design: compiled checkers are named by their expression).

type diffPair struct {
	name string
	expr *Expr
	ref  predicate.P
}

func diffPairs() []diffPair {
	return []diffPair{
		{"selftrust", SelfTrusting(), predicate.SelfTrusting()},
		{"atmost0", AtMostSuspected(0), predicate.TotalSuspectBudget(0)},
		{"atmost1", AtMostSuspected(1), predicate.TotalSuspectBudget(1)},
		{"atmost2", AtMostSuspected(2), predicate.TotalSuspectBudget(2)},
		{"perround1", PerRound(1), predicate.PerRoundBudget(1)},
		{"perround2", PerRound(2), predicate.PerRoundBudget(2)},
		{"kset1", KSetEq3(1), predicate.KSetDetector(1)},
		{"kset2", KSetEq3(2), predicate.KSetDetector(2)},
		{"nomutualmiss", NoMutualMiss(), predicate.NoMutualMiss()},
		{"someoneseen", SomeoneSeen(), predicate.SomeoneSeenByAll()},
		{"identical", Identical(), predicate.IdenticalSuspects()},
		{"chain", Chain(), predicate.ContainmentChain()},
		{"immediacy", Immediacy(), predicate.Immediacy()},
		{"propagates", Propagates(), predicate.SuspicionPropagates()},
		{"neversusp", NeverSuspected(), predicate.NeverSuspectedExists()},
		{"bsys12", BSys(1, 2), predicate.BSystem(1, 2)},
		{"send-omission", SendOmission(1), predicate.SendOmission(1)},
		{"sync-crash", SyncCrash(1), predicate.SyncCrash(1)},
		{"shared-memory", SharedMemory(1), predicate.SharedMemory(1)},
		{"atomic-snapshot", AtomicSnapshot(1), predicate.AtomicSnapshot(1)},
		{"eventually-neversusp1", Eventually(1, NeverSuspected()), predicate.EventuallyNeverSuspected(1)},
		{"eventually-neversusp2", Eventually(2, NeverSuspected()), predicate.EventuallyNeverSuspected(2)},
		{"forever-perround", Forever(PerRound(1)), predicate.PerRoundBudget(1)},
	}
}

// immediateSnapshotPairs needs the trace's n; split out so the exhaustive
// and random drivers can instantiate it per universe.
func immediateSnapshotPair(n int) diffPair {
	return diffPair{"immediate-snapshot", ImmediateSnapshot(n), predicate.ImmediateSnapshot(n)}
}

// sameVerdict fails the test unless the compiled and reference checkers
// agree on the trace — including Violation round/proc attribution.
func sameVerdict(t *testing.T, pair diffPair, tr *core.Trace) {
	t.Helper()
	got := pair.expr.Compile().Check(tr)
	want := pair.ref.Check(tr)
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: verdicts diverge on trace\n%s\n  compiled: %v\n  reference: %v",
			pair.name, tr, got, want)
	}
	if got == nil {
		return
	}
	var gv, wv *predicate.Violation
	if !errors.As(got, &gv) || !errors.As(want, &wv) {
		t.Fatalf("%s: non-Violation error (compiled %T, reference %T)", pair.name, got, want)
	}
	if gv.Round != wv.Round || gv.Proc != wv.Proc {
		t.Fatalf("%s: attribution diverges on trace\n%s\n  compiled: round %d proc %d (%v)\n  reference: round %d proc %d (%v)",
			pair.name, tr, gv.Round, gv.Proc, got, wv.Round, wv.Proc, want)
	}
}

// TestCompiledCheckersMatchExhaustive sweeps every crash-free trace over a
// tiny universe (7^6 ≈ 1.2e5 traces at n=3, rounds=2) through every pair.
func TestCompiledCheckersMatchExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive differential sweep")
	}
	pairs := append(diffPairs(), immediateSnapshotPair(3))
	if err := predicate.ExhaustiveTraces(3, 2, func(tr *core.Trace) error {
		for _, pair := range pairs {
			sameVerdict(t, pair, tr)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// randomTrace builds a seeded trace with arbitrary suspect sets and a
// monotonically shrinking active set (fail-stop crashes), the shape engine
// traces have. Deliver entries stay nil: checkers only read D(i,r).
func randomTrace(rng *rand.Rand, n, rounds int) *core.Trace {
	tr := core.NewTrace(n)
	active := core.FullSet(n)
	crashed := core.NewSet(n)
	for r := 1; r <= rounds; r++ {
		if r > 1 && rng.Intn(4) == 0 && active.Count() > 1 {
			victim := active.Members()[rng.Intn(active.Count())]
			active = active.Clone()
			active.Remove(victim)
			crashed = crashed.Clone()
			crashed.Add(victim)
		}
		rec := core.RoundRecord{
			R:        r,
			Suspects: make([]core.Set, n),
			Deliver:  make([]core.Set, n),
			Active:   active,
			Crashed:  crashed,
		}
		for i := 0; i < n; i++ {
			d := core.NewSet(n)
			if active.Has(core.PID(i)) {
				for j := 0; j < n; j++ {
					// Bias toward small sets so satisfying traces are
					// common enough to exercise the nil-verdict path too.
					if rng.Intn(3) == 0 {
						d.Add(core.PID(j))
					}
				}
				if d.Count() == n {
					d.Remove(core.PID(rng.Intn(n)))
				}
			}
			rec.Suspects[i] = d
		}
		tr.Append(rec)
	}
	return tr
}

// TestCompiledCheckersMatchRandom drives thousands of seeded random traces
// (with crashes and self-suspicions the exhaustive sweep cannot produce)
// through every pair.
func TestCompiledCheckersMatchRandom(t *testing.T) {
	const n, rounds, seeds = 5, 4, 2000
	pairs := append(diffPairs(), immediateSnapshotPair(n))
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		tr := randomTrace(rng, n, rounds)
		for _, pair := range pairs {
			sameVerdict(t, pair, tr)
		}
	}
}

// TestCompiledCheckerShortTraceWindows pins the vacuous-window semantics:
// an eventually(stab, ...) over a trace no longer than stab passes, like
// its hand-written twin.
func TestCompiledCheckerShortTraceWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomTrace(rng, 4, 2)
	for _, stab := range []int{2, 3, 5} {
		pair := diffPair{
			name: "eventually-short",
			expr: Eventually(stab, NeverSuspected()),
			ref:  predicate.EventuallyNeverSuspected(stab),
		}
		sameVerdict(t, pair, tr)
		if err := pair.expr.Compile().Check(tr); err != nil {
			t.Fatalf("stab=%d over a %d-round trace must be vacuous: %v", stab, tr.Len(), err)
		}
	}
}

// TestCompiledCheckerOrSemantics exercises the Or combinator the reference
// package gained for the compiler: a disjunction passes iff some disjunct
// does.
func TestCompiledCheckerOrSemantics(t *testing.T) {
	expr := Or(KSetEq3(1), PerRound(1))
	comp := expr.Compile()
	count := 0
	if err := predicate.ExhaustiveTraces(3, 1, func(tr *core.Trace) error {
		got := comp.Check(tr)
		a := predicate.KSetDetector(1).Check(tr)
		b := predicate.PerRoundBudget(1).Check(tr)
		want := a == nil || b == nil
		if (got == nil) != want {
			t.Fatalf("or verdict diverges on\n%s\n  compiled %v, kset %v, perround %v", tr, got, a, b)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("no traces enumerated")
	}
}

// TestCompiledCheckerNotSemantics: a negation passes iff the body fails.
func TestCompiledCheckerNotSemantics(t *testing.T) {
	expr := Not(PerRound(0))
	comp := expr.Compile()
	if err := predicate.ExhaustiveTraces(3, 1, func(tr *core.Trace) error {
		got := comp.Check(tr)
		body := predicate.PerRoundBudget(0).Check(tr)
		if (got == nil) != (body != nil) {
			t.Fatalf("not verdict diverges on\n%s\n  compiled %v, body %v", tr, got, body)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
