// Package hoalg is a combinator algebra over per-round heard-of/suspicion
// sets D(i,r), after Shimi/Hurault/Queinnec's Heard-Of characterization
// (arXiv 2011.12879) and derivation-from-elementary-patterns (arXiv
// 2004.10619) papers. An RRFD model is a predicate over the family of
// suspect sets of an execution; this package makes those predicates
// first-class expressions with a canonical string form and three compilers:
//
//   - Compile() — a runtime trace checker (predicate.P, same Violation
//     attribution as the hand-written checkers in internal/predicate);
//   - CompileEnum(n) — an exhaustive round-plan enumerator for the
//     internal/mc explorer (the four bespoke enumerators that used to live
//     in internal/adversary are now thin wrappers over this);
//   - CompilePlan(n, seed) — a seeded chaos fault plan for
//     internal/faultnet whose injected executions satisfy the expression
//     (honest) or violate it (under a top-level negation).
//
// Atoms quantify over all rounds implicitly ("forever"); Eventually(stab, e)
// relaxes a sub-expression to hold only from round stab+1 on.
package hoalg

import (
	"fmt"
	"strings"
)

// Op is the node kind of an expression.
type Op int

const (
	OpAtom Op = iota
	OpAnd
	OpOr
	OpNot
	OpForever
	OpEventually
)

// AtomKind enumerates the elementary predicates over D(i,r). Each maps to a
// clause of the paper's model equations (see DESIGN §17 for the table).
type AtomKind int

const (
	// AtomSelfTrust: p ∉ D(p,r) — the self-trust clause of eq. (1).
	AtomSelfTrust AtomKind = iota
	// AtomAtMost: |⋃_r ⋃_i D(i,r)| ≤ f — eq. (1)'s whole-run budget.
	AtomAtMost
	// AtomPerRound: |D(i,r)| ≤ f — eq. (3), the async model.
	AtomPerRound
	// AtomKSet: |⋃D \ ⋂D| < k per round — the §3 k-set detector.
	AtomKSet
	// AtomNoMutualMiss: j ∈ D(i,r) ⇒ i ∉ D(j,r) — §2 item 4 alternative.
	AtomNoMutualMiss
	// AtomSomeoneSeen: |⋃_i D(i,r)| < n — eq. (4).
	AtomSomeoneSeen
	// AtomIdentical: D(i,r) = D(j,r) — eq. (5), the DDS detector.
	AtomIdentical
	// AtomChain: suspect sets totally ordered by ⊆ — §2 item 5 snapshots.
	AtomChain
	// AtomImmediacy: j ∉ D(i,r) ⇒ D(i,r) ⊆ D(j,r) — immediate snapshots.
	AtomImmediacy
	// AtomPropagates: ⋃_i D(i,r) ⊆ D(k,r+1) — eq. (2), crash propagation.
	AtomPropagates
	// AtomNeverSusp: some process is in no D(i,r) — §2 item 6 (detector S).
	AtomNeverSusp
	// AtomBSys: the §2 item 3 counterexample system B(f,t).
	AtomBSys
)

// atomInfo drives parsing, printing and arity checking per atom.
var atomInfo = map[AtomKind]struct {
	name  string
	arity int
}{
	AtomSelfTrust:    {"selftrust", 0},
	AtomAtMost:       {"atmost", 1},
	AtomPerRound:     {"perround", 1},
	AtomKSet:         {"kset", 1},
	AtomNoMutualMiss: {"nomutualmiss", 0},
	AtomSomeoneSeen:  {"someoneseen", 0},
	AtomIdentical:    {"identical", 0},
	AtomChain:        {"chain", 0},
	AtomImmediacy:    {"immediacy", 0},
	AtomPropagates:   {"propagates", 0},
	AtomNeverSusp:    {"neversusp", 0},
	AtomBSys:         {"bsys", 2},
}

// atomByName is the inverse of atomInfo, built once at init.
var atomByName = func() map[string]AtomKind {
	m := make(map[string]AtomKind, len(atomInfo))
	for k, info := range atomInfo {
		m[info.name] = k
	}
	return m
}()

// Expr is a model expression. Leaves are atoms; inner nodes combine
// sub-expressions. Expressions are immutable once built.
type Expr struct {
	Op   Op
	Atom AtomKind // valid when Op == OpAtom
	Args []int    // atom arguments, or [stab] for OpEventually
	Kids []*Expr  // operands for And/Or/Not/Forever/Eventually
}

func atom(k AtomKind, args ...int) *Expr {
	for i, a := range args {
		if a < 0 {
			args[i] = 0
		}
	}
	return &Expr{Op: OpAtom, Atom: k, Args: args}
}

// SelfTrusting is the "p ∉ D(p,r)" atom of eq. (1).
func SelfTrusting() *Expr { return atom(AtomSelfTrust) }

// AtMostSuspected bounds the whole-run suspect union: |⋃⋃D(i,r)| ≤ f.
func AtMostSuspected(f int) *Expr { return atom(AtomAtMost, f) }

// PerRound is eq. (3): |D(i,r)| ≤ f for every process and round.
func PerRound(f int) *Expr { return atom(AtomPerRound, f) }

// KSetEq3 is the §3 k-set detector: per-round uncertainty below k.
func KSetEq3(k int) *Expr {
	if k < 1 {
		k = 1
	}
	return atom(AtomKSet, k)
}

// NoMutualMiss forbids mutual suspicion within a round (§2 item 4).
func NoMutualMiss() *Expr { return atom(AtomNoMutualMiss) }

// SomeoneSeen is eq. (4): some process is suspected by nobody each round.
func SomeoneSeen() *Expr { return atom(AtomSomeoneSeen) }

// Identical is eq. (5): all processes share one suspect set per round.
func Identical() *Expr { return atom(AtomIdentical) }

// Chain totally orders a round's suspect sets by containment (§2 item 5).
func Chain() *Expr { return atom(AtomChain) }

// Immediacy is the immediate-snapshot clause: j ∉ D(i,r) ⇒ D(i,r) ⊆ D(j,r).
func Immediacy() *Expr { return atom(AtomImmediacy) }

// Propagates is eq. (2): round-r suspicions appear in every D(k,r+1).
func Propagates() *Expr { return atom(AtomPropagates) }

// NeverSuspected is §2 item 6: some process is never suspected by anyone.
func NeverSuspected() *Expr { return atom(AtomNeverSusp) }

// BSys is the §2 item 3 counterexample system B(f,t).
func BSys(f, t int) *Expr { return atom(AtomBSys, f, t) }

// SendOmission is eq. (1): selftrust & atmost(f).
func SendOmission(f int) *Expr { return And(SelfTrusting(), AtMostSuspected(f)) }

// SyncCrash is eqs. (1)+(2): selftrust & atmost(f) & propagates.
func SyncCrash(f int) *Expr {
	return And(SelfTrusting(), AtMostSuspected(f), Propagates())
}

// SharedMemory is eqs. (3)+(4): perround(f) & someoneseen.
func SharedMemory(f int) *Expr { return And(PerRound(f), SomeoneSeen()) }

// AtomicSnapshot is §2 item 5: perround(f) & selftrust & chain.
func AtomicSnapshot(f int) *Expr {
	return And(PerRound(f), SelfTrusting(), Chain())
}

// ImmediateSnapshot is the iterated-immediate-snapshot model for n procs.
func ImmediateSnapshot(n int) *Expr {
	return And(SelfTrusting(), Chain(), Immediacy(), PerRound(n-1))
}

// And conjoins expressions, flattening nested conjunctions. And of one
// expression is that expression; And of none panics (no unit to print).
func And(kids ...*Expr) *Expr { return nary(OpAnd, kids) }

// Or disjoins expressions, flattening nested disjunctions.
func Or(kids ...*Expr) *Expr { return nary(OpOr, kids) }

func nary(op Op, kids []*Expr) *Expr {
	if len(kids) == 0 {
		panic("hoalg: empty And/Or")
	}
	flat := make([]*Expr, 0, len(kids))
	for _, k := range kids {
		if k.Op == op {
			flat = append(flat, k.Kids...)
		} else {
			flat = append(flat, k)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Expr{Op: op, Kids: flat}
}

// Not negates an expression. Double negation cancels.
func Not(e *Expr) *Expr {
	if e.Op == OpNot {
		return e.Kids[0]
	}
	return &Expr{Op: OpNot, Kids: []*Expr{e}}
}

// Forever marks a sub-expression as holding in every round. Atoms already
// quantify over all rounds, so this is a readability marker with identity
// semantics — it survives parse/String round-trips.
func Forever(e *Expr) *Expr { return &Expr{Op: OpForever, Kids: []*Expr{e}} }

// Eventually relaxes e to hold from round stab+1 on; traces no longer than
// stab satisfy it vacuously.
func Eventually(stab int, e *Expr) *Expr {
	if stab < 0 {
		stab = 0
	}
	return &Expr{Op: OpEventually, Args: []int{stab}, Kids: []*Expr{e}}
}

// precedence: | binds loosest, then &, then unary/primary.
func prec(e *Expr) int {
	switch e.Op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	default:
		return 3
	}
}

// String renders the canonical form: atoms as name(args), & and | infix
// with minimal parentheses, ! prefix, forever/eventually as functions.
// Parse(e.String()) reproduces e exactly (see parse.go).
func (e *Expr) String() string {
	var b strings.Builder
	e.render(&b, 0)
	return b.String()
}

func (e *Expr) render(b *strings.Builder, parent int) {
	if p := prec(e); p < parent {
		b.WriteByte('(')
		e.renderRaw(b)
		b.WriteByte(')')
		return
	}
	e.renderRaw(b)
}

func (e *Expr) renderRaw(b *strings.Builder) {
	switch e.Op {
	case OpAtom:
		info := atomInfo[e.Atom]
		b.WriteString(info.name)
		if len(e.Args) > 0 {
			b.WriteByte('(')
			for i, a := range e.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(b, "%d", a)
			}
			b.WriteByte(')')
		}
	case OpAnd:
		for i, k := range e.Kids {
			if i > 0 {
				b.WriteString(" & ")
			}
			k.render(b, 2)
		}
	case OpOr:
		for i, k := range e.Kids {
			if i > 0 {
				b.WriteString(" | ")
			}
			k.render(b, 1)
		}
	case OpNot:
		b.WriteByte('!')
		e.Kids[0].render(b, 3)
	case OpForever:
		b.WriteString("forever(")
		e.Kids[0].render(b, 0)
		b.WriteByte(')')
	case OpEventually:
		fmt.Fprintf(b, "eventually(%d, ", e.Args[0])
		e.Kids[0].render(b, 0)
		b.WriteByte(')')
	}
}

// Equal reports structural equality.
func (e *Expr) Equal(o *Expr) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Op != o.Op || e.Atom != o.Atom ||
		len(e.Args) != len(o.Args) || len(e.Kids) != len(o.Kids) {
		return false
	}
	for i := range e.Args {
		if e.Args[i] != o.Args[i] {
			return false
		}
	}
	for i := range e.Kids {
		if !e.Kids[i].Equal(o.Kids[i]) {
			return false
		}
	}
	return true
}

// containsAtom reports whether any leaf of e is the given atom.
func (e *Expr) containsAtom(k AtomKind) bool {
	if e.Op == OpAtom {
		return e.Atom == k
	}
	for _, kid := range e.Kids {
		if kid.containsAtom(k) {
			return true
		}
	}
	return false
}
