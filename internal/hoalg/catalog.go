package hoalg

import (
	"fmt"
	"sort"
)

// Params instantiates a catalog model for a concrete system size.
type Params struct {
	N    int // processes
	F    int // fault budget
	K    int // k-set bound
	Stab int // stabilization round for eventual models
}

// Model is one derived model in the catalog: a named expression family
// following the elementary-pattern derivations of arXiv 2004.10619.
type Model struct {
	Name string
	Ref  string // paper locus the expression encodes
	Desc string
	New  bool // not expressible by the repo's pre-algebra predicates
	Build func(p Params) *Expr
}

// catalog is ordered as presented: the paper's §2–§5 models first, then
// the derived combinations the algebra makes expressible.
var catalog = []Model{
	{
		Name: "sync-omission",
		Ref:  "eq. (1)",
		Desc: "synchronous message passing, ≤f send-omission faults",
		Build: func(p Params) *Expr { return SendOmission(p.F) },
	},
	{
		Name: "sync-crash",
		Ref:  "eqs. (1)+(2)",
		Desc: "synchronous message passing, ≤f crash faults",
		Build: func(p Params) *Expr { return SyncCrash(p.F) },
	},
	{
		Name: "async",
		Ref:  "eq. (3)",
		Desc: "asynchronous message passing, ≤f crashes (n−f heard per round)",
		Build: func(p Params) *Expr { return PerRound(p.F) },
	},
	{
		Name: "shared-memory",
		Ref:  "eqs. (3)+(4)",
		Desc: "asynchronous SWMR shared memory, ≤f crashes",
		Build: func(p Params) *Expr { return SharedMemory(p.F) },
	},
	{
		Name: "atomic-snapshot",
		Ref:  "§2 item 5",
		Desc: "f-resilient atomic-snapshot shared memory",
		Build: func(p Params) *Expr { return AtomicSnapshot(p.F) },
	},
	{
		Name: "immediate-snapshot",
		Ref:  "§2 item 5 + [4]",
		Desc: "iterated immediate snapshots (wait-free)",
		Build: func(p Params) *Expr { return ImmediateSnapshot(p.N) },
	},
	{
		Name: "kset-detector",
		Ref:  "§3",
		Desc: "k-set fault detector: per-round uncertainty below k",
		Build: func(p Params) *Expr { return KSetEq3(p.K) },
	},
	{
		Name: "b-system",
		Ref:  "§2 item 3",
		Desc: "counterexample system B: ≤t processes may miss up to t, rest ≤f",
		Build: func(p Params) *Expr { return BSys(p.F, p.F+1) },
	},
	{
		Name: "eventually-s",
		Ref:  "§2 item 6 / §7",
		Desc: "eventual accuracy: after stabilization someone is never suspected",
		Build: func(p Params) *Expr { return Eventually(p.Stab, NeverSuspected()) },
	},
	{
		Name: "semi-sync",
		Ref:  "eq. (5) + eq. (3)",
		New:  true,
		Desc: "DDS-style identical suspicions under the async budget",
		Build: func(p Params) *Expr { return And(Identical(), PerRound(p.F)) },
	},
	{
		Name: "no-mutual-miss-async",
		Ref:  "§2 item 4 alt + eq. (3)",
		New:  true,
		Desc: "async budget where misses never form 2-cycles",
		Build: func(p Params) *Expr { return And(NoMutualMiss(), PerRound(p.F)) },
	},
	{
		Name: "eventually-sync",
		Ref:  "eq. (1) windowed, §7",
		New:  true,
		Desc: "eventually synchronous: eq. (1) holds from round stab+1 on",
		Build: func(p Params) *Expr {
			return Eventually(p.Stab, And(SelfTrusting(), AtMostSuspected(p.F)))
		},
	},
	{
		Name: "kset-or-budget",
		Ref:  "§3 ∨ eq. (3)",
		New:  true,
		Desc: "rounds governed by a k-set detector or the async budget",
		Build: func(p Params) *Expr { return Or(KSetEq3(p.K), PerRound(p.F)) },
	},
	{
		Name: "selftrust-kset",
		Ref:  "§3 + eq. (1) clause",
		New:  true,
		Desc: "self-trusting k-set detector",
		Build: func(p Params) *Expr { return And(SelfTrusting(), KSetEq3(p.K)) },
	},
}

// Catalog returns the derived-model catalog in presentation order.
func Catalog() []Model {
	out := make([]Model, len(catalog))
	copy(out, catalog)
	return out
}

// Lookup finds a catalog model by name.
func Lookup(name string) (Model, bool) {
	for _, m := range catalog {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// Names lists the catalog model names, sorted.
func Names() []string {
	out := make([]string, len(catalog))
	for i, m := range catalog {
		out[i] = m.Name
	}
	sort.Strings(out)
	return out
}

// Resolve turns a -model argument into an expression: a catalog model name
// instantiated with p, or failing that a parsed expression string.
func Resolve(s string, p Params) (*Expr, error) {
	if m, ok := Lookup(s); ok {
		return m.Build(p), nil
	}
	e, err := Parse(s)
	if err != nil {
		return nil, fmt.Errorf("%w (not a catalog model either; known models: %v)", err, Names())
	}
	return e, nil
}
