package hoalg

import (
	"fmt"
	"strconv"
)

// ParseError is a structured syntax error: Pos is the byte offset into the
// input where parsing failed.
type ParseError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("hoalg: parse error at offset %d: %s", e.Pos, e.Msg)
}

// maxParseDepth bounds expression nesting so adversarial inputs (e.g. a
// thousand '!'s) fail with a ParseError instead of exhausting the stack.
const maxParseDepth = 64

// maxArg bounds numeric atom arguments; model parameters are process or
// round counts, never millions.
const maxArg = 1 << 16

// Parse reads the canonical expression syntax back into an *Expr:
//
//	expr    := or
//	or      := and ('|' and)*
//	and     := unary ('&' unary)*
//	unary   := '!' unary | primary
//	primary := '(' expr ')'
//	         | 'forever' '(' expr ')'
//	         | 'eventually' '(' NUM ',' expr ')'
//	         | ATOM [ '(' NUM (',' NUM)* ')' ]
//
// Parse(e.String()) reproduces e exactly for every constructed e.
func Parse(s string) (*Expr, error) {
	p := &parser{src: s}
	e, err := p.or(0)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, p.errf("unexpected %q after expression", rune(p.src[p.pos]))
	}
	return e, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// peek returns the next non-space byte without consuming it, or 0 at EOF.
func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) expect(c byte) error {
	if p.peek() != c {
		if p.pos >= len(p.src) {
			return p.errf("expected %q, got end of input", rune(c))
		}
		return p.errf("expected %q, got %q", rune(c), rune(p.src[p.pos]))
	}
	p.pos++
	return nil
}

func (p *parser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c < 'a' || c > 'z' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) number() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errf("expected a number")
	}
	text := p.src[start:p.pos]
	n, err := strconv.Atoi(text)
	if err != nil || n > maxArg {
		p.pos = start
		return 0, p.errf("number %s out of range (max %d)", text, maxArg)
	}
	return n, nil
}

func (p *parser) or(depth int) (*Expr, error) {
	if depth > maxParseDepth {
		return nil, p.errf("expression nests deeper than %d levels", maxParseDepth)
	}
	e, err := p.and(depth + 1)
	if err != nil {
		return nil, err
	}
	kids := []*Expr{e}
	for p.peek() == '|' {
		p.pos++
		k, err := p.and(depth + 1)
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	return nary(OpOr, kids), nil
}

func (p *parser) and(depth int) (*Expr, error) {
	if depth > maxParseDepth {
		return nil, p.errf("expression nests deeper than %d levels", maxParseDepth)
	}
	e, err := p.unary(depth + 1)
	if err != nil {
		return nil, err
	}
	kids := []*Expr{e}
	for p.peek() == '&' {
		p.pos++
		k, err := p.unary(depth + 1)
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	return nary(OpAnd, kids), nil
}

func (p *parser) unary(depth int) (*Expr, error) {
	if depth > maxParseDepth {
		return nil, p.errf("expression nests deeper than %d levels", maxParseDepth)
	}
	if p.peek() == '!' {
		p.pos++
		k, err := p.unary(depth + 1)
		if err != nil {
			return nil, err
		}
		return Not(k), nil
	}
	return p.primary(depth + 1)
}

func (p *parser) primary(depth int) (*Expr, error) {
	if depth > maxParseDepth {
		return nil, p.errf("expression nests deeper than %d levels", maxParseDepth)
	}
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		e, err := p.or(depth + 1)
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return e, nil
	case c >= 'a' && c <= 'z':
		return p.call(depth)
	case c == 0:
		return nil, p.errf("expected an expression, got end of input")
	default:
		return nil, p.errf("expected an expression, got %q", rune(c))
	}
}

func (p *parser) call(depth int) (*Expr, error) {
	namePos := p.pos
	name := p.ident()
	switch name {
	case "forever":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		e, err := p.or(depth + 1)
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Forever(e), nil
	case "eventually":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		stab, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		e, err := p.or(depth + 1)
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Eventually(stab, e), nil
	}
	kind, ok := atomByName[name]
	if !ok {
		p.pos = namePos
		if name == "" {
			return nil, p.errf("expected an atom name")
		}
		return nil, p.errf("unknown atom %q (known: %s)", name, atomNames())
	}
	arity := atomInfo[kind].arity
	if arity == 0 {
		if p.peek() == '(' {
			return nil, p.errf("atom %q takes no arguments", name)
		}
		return atom(kind), nil
	}
	if err := p.expect('('); err != nil {
		return nil, err
	}
	args := make([]int, 0, arity)
	for i := 0; i < arity; i++ {
		if i > 0 {
			if err := p.expect(','); err != nil {
				return nil, err
			}
		}
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		args = append(args, n)
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	if kind == AtomKSet && args[0] < 1 {
		return nil, p.errf("kset requires k >= 1")
	}
	return atom(kind, args...), nil
}

// atomNames lists the atom vocabulary in a fixed order for error messages.
func atomNames() string {
	names := ""
	for k := AtomSelfTrust; k <= AtomBSys; k++ {
		if names != "" {
			names += ", "
		}
		names += atomInfo[k].name
	}
	return names
}
