package hoalg

import (
	"repro/internal/core"
	"repro/internal/faultnet"
)

// Oracle drives the compiled enumerator as a seeded core.Oracle: each round
// it enumerates the plans the model allows in the current state and picks
// one pseudo-randomly. For a disjunction, one branch is drawn up front and
// followed for the whole run, so the produced trace satisfies that branch
// (and hence the disjunction). This is the plain-run counterpart of the
// exhaustive mc exploration: same plan families, one sampled path.
func (e *Expr) Oracle(n int, seed int64) (core.Oracle, error) {
	branches, err := e.EnumBranches(n)
	if err != nil {
		return nil, err
	}
	rng := faultnet.NewRNG(seed)
	b := branches[rng.Intn(len(branches))]
	return &seededOracle{n: n, enum: b.Enum, rng: rng,
		suspected: core.NewSet(n), prevUnion: core.NewSet(n)}, nil
}

type seededOracle struct {
	n         int
	enum      Enum
	rng       *faultnet.RNG
	suspected core.Set
	prevUnion core.Set
	unions    []core.Set
}

func (o *seededOracle) Plan(r int, active core.Set) core.RoundPlan {
	plans := o.enum(EnumState{R: r, Active: active.Clone(),
		Suspected: o.suspected.Clone(), PrevUnion: o.prevUnion.Clone(),
		Unions: append([]core.Set(nil), o.unions...)})
	var plan core.RoundPlan
	if len(plans) == 0 {
		// A degenerate state admits no plan; fall back to a benign round
		// rather than wedging the run.
		ds := make([]core.Set, o.n)
		for i := range ds {
			ds[i] = core.NewSet(o.n)
		}
		plan = core.RoundPlan{Suspects: ds}
	} else {
		plan = plans[o.rng.Intn(len(plans))]
	}
	u := core.NewSet(o.n)
	for _, d := range plan.Suspects {
		if !d.Empty() {
			u = u.Union(d)
		}
	}
	o.prevUnion = u
	o.suspected = o.suspected.Union(u)
	o.unions = append(o.unions, u)
	return plan
}
