package hoalg

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chaos"
)

// This file closes the loop between the plan compiler and the checker
// compiler through the real chaos harness: for every catalog model, an
// honest CompilePlan campaign must satisfy the model's own compiled
// checker, a breaker plan (CompilePlan of the negation) must be caught by
// it, and both campaigns must be deterministic functions of the seed.

const (
	closureSeed   = 11
	closureRuns   = 3
	closureRounds = 3 // > stab+1 so eventual models have a checked suffix
)

func closureParams() Params { return Params{N: 5, F: 1, K: 2, Stab: 1} }

func closureConfig(t *testing.T, e *Expr, plan *Expr) chaos.Config {
	t.Helper()
	p := closureParams()
	fp, err := plan.CompilePlan(p.N, closureSeed)
	if err != nil {
		t.Fatalf("CompilePlan(%q): %v", plan, err)
	}
	pred := e.Compile()
	return chaos.Config{
		N: p.N, F: p.F, K: p.K,
		Rounds: closureRounds,
		Runs:   closureRuns,
		Seed:   closureSeed,
		// MaxCrashes stays 0 and rounds run lock-step, so the plan is the
		// only source of suspicions: D(i,r) = omitting senders ∖ {i}.
		SyncRounds: true,
		FixedPlan:  &fp,
		TracePred:  &pred,
		Out:        io.Discard,
	}
}

// TestCompiledPlansSatisfyCompiledCheckers: honest plan, own checker, all
// models, zero violations.
func TestCompiledPlansSatisfyCompiledCheckers(t *testing.T) {
	p := closureParams()
	for _, m := range Catalog() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			e := m.Build(p)
			sum := chaos.Run(closureConfig(t, e, e))
			if !sum.Ok() {
				t.Fatalf("honest plan for %q violates its own checker: %+v", e, sum.Violations)
			}
		})
	}
}

// TestBreakerPlansCaughtByCompiledCheckers: the negation's plan must force
// a model violation that the compiled checker attributes as "predicate".
func TestBreakerPlansCaughtByCompiledCheckers(t *testing.T) {
	p := closureParams()
	for _, m := range Catalog() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			e := m.Build(p)
			sum := chaos.Run(closureConfig(t, e, Not(e)))
			if len(sum.Violations) == 0 {
				t.Fatalf("breaker plan for %q escaped the compiled checker", e)
			}
			found := false
			for _, v := range sum.Violations {
				if v.Kind == "predicate" && strings.Contains(v.Detail, "violates model") {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("breaker violations for %q carry no predicate kind: %+v", e, sum.Violations)
			}
		})
	}
}

// TestClosureCampaignsDeterministic: the same config yields byte-identical
// summaries, and the compiled plan itself is a pure function of
// (expression, n, seed).
func TestClosureCampaignsDeterministic(t *testing.T) {
	p := closureParams()
	e := Lookup2(t, "async").Build(p)
	a := chaos.Run(closureConfig(t, e, Not(e)))
	b := chaos.Run(closureConfig(t, e, Not(e)))
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("violation counts diverge across identical campaigns: %d vs %d",
			len(a.Violations), len(b.Violations))
	}
	for i := range a.Violations {
		if a.Violations[i].Detail != b.Violations[i].Detail {
			t.Fatalf("violation %d diverges:\n  %s\n  %s", i, a.Violations[i].Detail, b.Violations[i].Detail)
		}
	}
	for _, m := range Catalog() {
		expr := m.Build(p)
		p1, err1 := expr.CompilePlan(p.N, closureSeed)
		p2, err2 := expr.CompilePlan(p.N, closureSeed)
		if err1 != nil || err2 != nil {
			t.Fatalf("CompilePlan(%q): %v / %v", expr, err1, err2)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("CompilePlan(%q) not a pure function of the seed:\n%+v\n%+v", expr, p1, p2)
		}
	}
}

// TestCompilePlanRejections pins the documented unsupported shapes.
func TestCompilePlanRejections(t *testing.T) {
	cases := []struct {
		expr   *Expr
		substr string
	}{
		{Not(SelfTrusting()), "cannot violate selftrust"},
		{Not(Immediacy()), "cannot violate immediacy"},
		{And(Not(Identical()), PerRound(1)), "negation-free"},
		{Not(And(SelfTrusting(), Immediacy())), "no conjunct"},
		{Not(PerRound(9)), "omitting senders"},
	}
	for _, tc := range cases {
		if _, err := tc.expr.CompilePlan(5, closureSeed); err == nil {
			t.Fatalf("CompilePlan(%q) succeeded, want error containing %q", tc.expr, tc.substr)
		} else if !strings.Contains(err.Error(), tc.substr) {
			t.Fatalf("CompilePlan(%q) = %v, want substring %q", tc.expr, err, tc.substr)
		}
	}
	if _, err := PerRound(1).CompilePlan(1, closureSeed); err == nil {
		t.Fatal("CompilePlan at n=1 should fail")
	}
}

// Lookup2 is Lookup with a test-fatal miss.
func Lookup2(t *testing.T, name string) Model {
	t.Helper()
	m, ok := Lookup(name)
	if !ok {
		t.Fatalf("catalog model %q missing", name)
	}
	return m
}
