package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/predicate"
)

// checkAdversary collects a trace from the oracle and validates it against
// the predicate it is supposed to satisfy.
func checkAdversary(t *testing.T, n, rounds int, oracle core.Oracle, p predicate.P) *core.Trace {
	t.Helper()
	tr, err := core.CollectTrace(n, rounds, oracle)
	if err != nil {
		t.Fatalf("collect trace: %v", err)
	}
	if tr.Len() != rounds {
		t.Fatalf("trace has %d rounds, want %d", tr.Len(), rounds)
	}
	if err := p.Check(tr); err != nil {
		t.Fatalf("adversary violates its own predicate: %v\n%s", err, tr)
	}
	return tr
}

func TestBenignSatisfiesEverything(t *testing.T) {
	n := 6
	oracle := Benign(n)
	for _, p := range []predicate.P{
		predicate.SendOmission(0),
		predicate.SyncCrash(0),
		predicate.PerRoundBudget(0),
		predicate.SharedMemory(0),
		predicate.AtomicSnapshot(0),
		predicate.NeverSuspectedExists(),
		predicate.KSetDetector(1),
		predicate.IdenticalSuspects(),
	} {
		checkAdversary(t, n, 5, oracle, p)
	}
}

func TestOmissionSatisfiesEq1(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		checkAdversary(t, 8, 10, Omission(8, 3, 0.7, seed), predicate.SendOmission(3))
	}
}

func TestOmissionIsHostile(t *testing.T) {
	// With rate 1 and f ≥ 1 some suspicion must actually occur.
	tr := checkAdversary(t, 6, 6, Omission(6, 2, 1.0, 1), predicate.SendOmission(2))
	if tr.CumulativeSuspects(tr.Len()).Empty() {
		t.Fatal("fully hostile omission adversary never suspected anyone")
	}
}

func TestCrashSatisfiesSyncCrash(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		checkAdversary(t, 8, 12, Crash(8, 3, seed), predicate.SyncCrash(3))
	}
}

func TestCrashIsSubmodelOfOmission(t *testing.T) {
	// §2 item 2: the crash model predicate implies the omission predicate.
	for seed := int64(0); seed < 20; seed++ {
		checkAdversary(t, 8, 12, Crash(8, 3, seed), predicate.SendOmission(3))
	}
}

func TestChainCrashSatisfiesSyncCrash(t *testing.T) {
	n, f, k := 10, 4, 2 // m = 2, chains need k·(m+1)+1 = 7 ≤ n
	checkAdversary(t, n, f/k+2, ChainCrash(n, f, k), predicate.SyncCrash(f))
}

func TestChainCrashHidesValues(t *testing.T) {
	// After m rounds, value-j chains must leave exactly one live process
	// having received the chain: verify the delivery pattern directly.
	n, f, k := 10, 4, 2
	m := f / k
	tr, err := core.CollectTrace(n, m+1, ChainCrash(n, f, k))
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= m; r++ {
		rec := tr.Round(r)
		for j := 0; j < k; j++ {
			holder := core.PID(k*(r-1) + j)
			next := core.PID(k*r + j)
			got := 0
			rec.Active.ForEach(func(i core.PID) {
				if i != holder && rec.Deliver[i].Has(holder) {
					got++
					if i != next {
						t.Errorf("round %d: chain %d holder reached %d, want only %d", r, j, i, next)
					}
				}
			})
			if got != 1 {
				t.Errorf("round %d: chain %d holder reached %d processes, want 1", r, j, got)
			}
		}
	}
}

func TestAsyncBudgetSatisfiesEq3(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		checkAdversary(t, 8, 10, AsyncBudget(8, 3, true, seed), predicate.PerRoundBudget(3))
	}
}

func TestAsyncBudgetCanViolateSharedMemory(t *testing.T) {
	// §2 item 4: eq. (3) alone does not give eq. (4). Find a round where
	// everyone is suspected by someone.
	_, err := predicate.Separates(func(seed int64) *core.Trace {
		tr, err := core.CollectTrace(6, 10, AsyncBudget(6, 5, true, seed))
		if err != nil {
			panic(err)
		}
		return tr
	}, predicate.PerRoundBudget(5), predicate.SomeoneSeenByAll(), 200)
	if err != nil {
		t.Fatalf("expected separation between eq3 and eq4: %v", err)
	}
}

func TestSharedMemSatisfiesEq3And4(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		checkAdversary(t, 8, 10, SharedMem(8, 5, seed), predicate.SharedMemory(5))
	}
}

func TestSnapshotChainSatisfiesItem5(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		checkAdversary(t, 8, 10, SnapshotChain(8, 3, seed), predicate.AtomicSnapshot(3))
	}
}

func TestSnapshotImpliesSharedMemory(t *testing.T) {
	// §2 item 5 ⊑ item 4 (for the same f, when f < n−1 the suffix
	// structure leaves the first writer unsuspected).
	gen := func(seed int64) *core.Trace {
		tr, err := core.CollectTrace(8, 8, SnapshotChain(8, 3, seed))
		if err != nil {
			panic(err)
		}
		return tr
	}
	if err := predicate.Implies(gen, predicate.AtomicSnapshot(3), predicate.SharedMemory(3), 100); err != nil {
		t.Fatal(err)
	}
}

func TestBSystemOracleSatisfiesItsPredicate(t *testing.T) {
	n, f, tt := 9, 2, 4 // f < t, 2t < n
	for seed := int64(0); seed < 20; seed++ {
		checkAdversary(t, n, 10, BSystemOracle(n, f, tt, seed), predicate.BSystem(f, tt))
	}
}

func TestBSystemViolatesEq3(t *testing.T) {
	// B is strictly weaker than A = eq. (3) with budget f: some process
	// should exceed the f budget at some round.
	n, f, tt := 9, 2, 4
	_, err := predicate.Separates(func(seed int64) *core.Trace {
		tr, err := core.CollectTrace(n, 10, BSystemOracle(n, f, tt, seed))
		if err != nil {
			panic(err)
		}
		return tr
	}, predicate.BSystem(f, tt), predicate.PerRoundBudget(f), 200)
	if err != nil {
		t.Fatalf("expected B to break eq3's f budget: %v", err)
	}
}

func TestNoMutualMissOracle(t *testing.T) {
	n, f := 7, 3
	for seed := int64(0); seed < 20; seed++ {
		checkAdversary(t, n, 8, NoMutualMissOracle(n, f, seed),
			predicate.And("no-mutual-miss-system", predicate.PerRoundBudget(f), predicate.NoMutualMiss()))
	}
}

func TestNoMutualMissCanViolateEq4(t *testing.T) {
	// The paper's cycle observation: no-mutual-miss does not imply
	// eq. (4).
	n, f := 7, 3
	gen := func(seed int64) *core.Trace {
		tr, err := core.CollectTrace(n, 8, NoMutualMissOracle(n, f, seed))
		if err != nil {
			panic(err)
		}
		return tr
	}
	if _, err := predicate.Separates(gen, predicate.NoMutualMiss(), predicate.SomeoneSeenByAll(), 200); err != nil {
		t.Fatalf("expected a cycle execution violating eq4: %v", err)
	}
}

func TestKSetUncertaintySatisfiesDetector(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		for seed := int64(0); seed < 10; seed++ {
			checkAdversary(t, 10, 8, KSetUncertainty(10, k, seed), predicate.KSetDetector(k))
		}
	}
}

func TestIdenticalSatisfiesEq5(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		checkAdversary(t, 8, 10, Identical(8, seed), predicate.IdenticalSuspects())
	}
}

func TestIdenticalImpliesK1Detector(t *testing.T) {
	// §5: eq. (5) is the k=1 instance of the §3 detector.
	gen := func(seed int64) *core.Trace {
		tr, err := core.CollectTrace(8, 8, Identical(8, seed))
		if err != nil {
			panic(err)
		}
		return tr
	}
	if err := predicate.Implies(gen, predicate.IdenticalSuspects(), predicate.KSetDetector(1), 100); err != nil {
		t.Fatal(err)
	}
}

func TestSpareNeverSuspected(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := checkAdversary(t, 8, 10, SpareNeverSuspected(8, 5, seed), predicate.NeverSuspectedExists())
		if !tr.NeverSuspected().Has(5) {
			t.Fatalf("spare process 5 was suspected: never-suspected = %s", tr.NeverSuspected())
		}
	}
}

func TestOrderedBlocksSatisfiesIISClauses(t *testing.T) {
	n := 7
	for seed := int64(0); seed < 20; seed++ {
		checkAdversary(t, n, 6, OrderedBlocks(n, seed), predicate.And("iis-clauses",
			predicate.SelfIncluded(), predicate.ContainmentChain(), predicate.NoMutualMiss()))
	}
}

func TestEventuallySpareContract(t *testing.T) {
	n, f, stab := 6, 2, 4
	for seed := int64(0); seed < 20; seed++ {
		tr := checkAdversary(t, n, 10, EventuallySpare(n, f, stab, 3, seed),
			predicate.PerRoundBudget(f))
		// After stabilization the spare is clean...
		for r := stab + 1; r <= tr.Len(); r++ {
			if tr.SuspectUnion(r).Has(3) {
				t.Fatalf("seed %d: spare suspected at round %d > stab", seed, r)
			}
		}
	}
	// ...and before it, some seed must suspect the spare (otherwise the
	// "eventual" part is vacuous).
	suspectedEarly := false
	for seed := int64(0); seed < 30 && !suspectedEarly; seed++ {
		tr, err := core.CollectTrace(n, stab, EventuallySpare(n, f, stab, 3, seed))
		if err != nil {
			t.Fatal(err)
		}
		if tr.CumulativeSuspects(stab).Has(3) {
			suspectedEarly = true
		}
	}
	if !suspectedEarly {
		t.Fatal("spare never suspected before stabilization across 30 seeds")
	}
}

func TestDeterminism(t *testing.T) {
	// Same seed, same trace.
	a, err := core.CollectTrace(8, 10, AsyncBudget(8, 3, true, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.CollectTrace(8, 10, AsyncBudget(8, 3, true, 7))
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 10; r++ {
		ra, rb := a.Round(r), b.Round(r)
		for i := 0; i < 8; i++ {
			if !ra.Suspects[i].Equal(rb.Suspects[i]) {
				t.Fatalf("round %d process %d differs across identical seeds", r, i)
			}
		}
	}
}
