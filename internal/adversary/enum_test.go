package adversary_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/predicate"
)

// explored runs an exhaustive exploration of FloodMin(rounds) under the
// given enumeration, checking that every explored trace satisfies the
// model predicate the enumeration claims to implement.
func explored(t *testing.T, n, rounds int, enum adversary.Enum, p predicate.P) *mc.Result {
	t.Helper()
	inputs := make([]core.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	res, err := mc.Explore(mc.Options{}, mc.CheckRun(mc.RunSpec{
		N:       n,
		Inputs:  inputs,
		Factory: agreement.FloodMin(rounds),
		Oracle: func(ctx *mc.Ctx) core.Oracle {
			return adversary.Enumerated(ctx, n, enum)
		},
		Props: []mc.Property{mc.TraceSatisfies(p)},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("enumeration left its model: %v", res.Counterexample)
	}
	if !res.Exhausted {
		t.Fatalf("exploration not exhausted: %+v", res)
	}
	return res
}

func TestEnumPerRoundBudgetInModel(t *testing.T) {
	enum, err := adversary.EnumPerRoundBudget(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := explored(t, 3, 2, enum, predicate.PerRoundBudget(1))
	// Round 1 and round 2 each offer 3^3 = 27 plans (each process misses
	// at most one of the other two: 3 choices each).
	if res.Schedules != 27*27 {
		t.Fatalf("schedules = %d, want 729", res.Schedules)
	}
}

func TestEnumSendOmissionInModel(t *testing.T) {
	enum, err := adversary.EnumSendOmission(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	explored(t, 3, 2, enum, predicate.SendOmission(1))
}

func TestEnumSyncCrashInModel(t *testing.T) {
	enum, err := adversary.EnumSyncCrash(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	explored(t, 3, 2, enum, predicate.SyncCrash(1))
}

func TestEnumKSetInModel(t *testing.T) {
	enum, err := adversary.EnumKSet(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	explored(t, 3, 1, enum, predicate.KSetDetector(2))
}

func TestEnumGuards(t *testing.T) {
	if _, err := adversary.EnumPerRoundBudget(5, 1); err == nil {
		t.Fatal("per-round-budget n=5 should be rejected")
	}
	if _, err := adversary.EnumKSet(4, 2); err == nil {
		t.Fatal("k-set n=4 should be rejected")
	}
	if _, err := adversary.EnumSendOmission(0, 1); err == nil {
		t.Fatal("n=0 should be rejected")
	}
	if _, err := adversary.EnumSyncCrash(5, 1); err == nil {
		t.Fatal("sync-crash n=5 should be rejected")
	}
}

// TestEnumSyncCrashPropagation: a process suspected in round r must be in
// everyone's round-r+1 suspect set (eq. (2)); spot-check the enumeration
// produces crashing plans at all, not just the all-trusting one.
func TestEnumSyncCrashProducesCrashes(t *testing.T) {
	enum, err := adversary.EnumSyncCrash(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	active := core.NewSet(3)
	for p := 0; p < 3; p++ {
		active.Add(core.PID(p))
	}
	prev := core.NewSet(3)
	prev.Add(0)
	sus := core.NewSet(3)
	sus.Add(0)
	plans := enum(adversary.EnumState{R: 2, Active: active, Suspected: sus, PrevUnion: prev})
	if len(plans) == 0 {
		t.Fatal("no plans for a round with a pending crash")
	}
	for _, pl := range plans {
		if !pl.Crashes.Has(0) {
			t.Fatalf("suspected process 0 not crashed in follow-up round: %+v", pl)
		}
		pl.Crashes.ForEach(func(cp core.PID) {
			active.ForEach(func(q core.PID) {
				if q != cp && !pl.Suspects[q].Has(cp) {
					t.Fatalf("live process %d does not suspect crashed %d", q, cp)
				}
			})
		})
	}
}
