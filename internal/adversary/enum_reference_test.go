package adversary_test

import (
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/mc"
)

// This file holds the compiled enumerators to the bespoke hand-written
// generators they replaced: refPerRoundBudget, refKSet, refSendOmission and
// refSyncCrash are verbatim copies of the pre-hoalg implementations. The
// wrappers must reproduce their plan lists byte for byte on every state the
// engine can reach, and drive the model checker to identical statistics and
// identical shrunk counterexamples.

func refWithout(pool core.Set, p core.PID) core.Set {
	s := pool.Clone()
	s.Remove(p)
	return s
}

func refSubsets(n int, pool core.Set, maxSize int) []core.Set {
	members := pool.Members()
	out := []core.Set{}
	for mask := 0; mask < 1<<len(members); mask++ {
		s := core.NewSet(n)
		for b, p := range members {
			if mask&(1<<b) != 0 {
				s.Add(p)
			}
		}
		if maxSize < 0 || s.Count() <= maxSize {
			out = append(out, s)
		}
	}
	return out
}

func refTuples(n int, active core.Set, perProc map[core.PID][]core.Set, ok func(ds []core.Set) bool) []core.RoundPlan {
	lives := active.Members()
	idx := make([]int, len(lives))
	var out []core.RoundPlan
	for {
		ds := make([]core.Set, n)
		for i := range ds {
			ds[i] = core.NewSet(n)
		}
		for j, p := range lives {
			ds[p] = perProc[p][idx[j]].Clone()
		}
		if ok == nil || ok(ds) {
			out = append(out, core.RoundPlan{Suspects: ds})
		}
		j := len(idx) - 1
		for j >= 0 && idx[j]+1 == len(perProc[lives[j]]) {
			idx[j] = 0
			j--
		}
		if j < 0 {
			return out
		}
		idx[j]++
	}
}

func refPerRoundBudget(n, f int) adversary.Enum {
	return func(st adversary.EnumState) []core.RoundPlan {
		per := make(map[core.PID][]core.Set)
		st.Active.ForEach(func(p core.PID) {
			per[p] = refSubsets(n, refWithout(st.Active, p), f)
		})
		return refTuples(n, st.Active, per, nil)
	}
}

func refKSet(n, k int) adversary.Enum {
	return func(st adversary.EnumState) []core.RoundPlan {
		per := make(map[core.PID][]core.Set)
		st.Active.ForEach(func(p core.PID) {
			per[p] = refSubsets(n, refWithout(st.Active, p), -1)
		})
		return refTuples(n, st.Active, per, func(ds []core.Set) bool {
			var union, inter core.Set
			first := true
			st.Active.ForEach(func(p core.PID) {
				if first {
					union, inter, first = ds[p].Clone(), ds[p].Clone(), false
					return
				}
				union = union.Union(ds[p])
				inter = inter.Intersect(ds[p])
			})
			if first {
				return true
			}
			return union.Diff(inter).Count() < k
		})
	}
}

func refSendOmission(n, f int) adversary.Enum {
	return func(st adversary.EnumState) []core.RoundPlan {
		per := make(map[core.PID][]core.Set)
		st.Active.ForEach(func(p core.PID) {
			per[p] = refSubsets(n, refWithout(st.Active, p), f)
		})
		return refTuples(n, st.Active, per, func(ds []core.Set) bool {
			u := st.Suspected.Clone()
			for _, d := range ds {
				u = u.Union(d)
			}
			return u.Count() <= f
		})
	}
}

func refSyncCrash(n, f int) adversary.Enum {
	return func(st adversary.EnumState) []core.RoundPlan {
		crashes := st.PrevUnion.Intersect(st.Active)
		carried := st.Suspected
		live := st.Active.Diff(crashes)

		room := f - st.Suspected.Count()
		if room < 0 {
			room = 0
		}
		fresh := refSubsets(n, live.Diff(st.Suspected), room)

		var out []core.RoundPlan
		for _, newSusp := range fresh {
			per := make(map[core.PID][]core.Set)
			live.ForEach(func(p core.PID) {
				var opts []core.Set
				for _, miss := range refSubsets(n, refWithout(newSusp, p), -1) {
					opts = append(opts, carried.Union(crashes).Union(miss))
				}
				per[p] = opts
			})
			for _, pl := range refTuples(n, live, per, nil) {
				pl.Crashes = crashes.Clone()
				out = append(out, pl)
			}
		}
		return out
	}
}

// family pairs one wrapped constructor with its reference twin.
type family struct {
	name     string
	n        int
	wrapped  adversary.Enum
	ref      adversary.Enum
	explored int // depth (rounds) for the plan-list walk
}

func families(t *testing.T) []family {
	t.Helper()
	mk := func(e adversary.Enum, err error) adversary.Enum {
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	var out []family
	for n := 2; n <= 4; n++ {
		for f := 0; f <= 2; f++ {
			out = append(out,
				family{"per-round-budget", n, mk(adversary.EnumPerRoundBudget(n, f)), refPerRoundBudget(n, f), 2},
				family{"send-omission", n, mk(adversary.EnumSendOmission(n, f)), refSendOmission(n, f), 2},
				family{"sync-crash", n, mk(adversary.EnumSyncCrash(n, f)), refSyncCrash(n, f), 3},
			)
		}
	}
	for n := 2; n <= 3; n++ {
		for k := 1; k <= 2; k++ {
			out = append(out, family{"k-set", n, mk(adversary.EnumKSet(n, k)), refKSet(n, k), 2})
		}
	}
	return out
}

// walkStates drives both enumerators through engine-reachable states: from
// each state the full plan lists must be identical; a sample of plans is
// then applied (active shrinks by the plan's crashes, the suspicion history
// advances exactly as adversary.Enumerated records it) and the walk
// recurses. Sampling first/middle/last plans bounds the branching while
// still exercising crashing and non-crashing successors.
func walkStates(t *testing.T, fam family, st adversary.EnumState, depth int) {
	t.Helper()
	ref := fam.ref(st)
	got := fam.wrapped(st)
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("%s n=%d: plan lists diverge at state %+v:\n  wrapped %d plans, reference %d plans",
			fam.name, fam.n, st, len(got), len(ref))
	}
	if depth == 0 || len(ref) == 0 {
		return
	}
	picks := map[int]bool{0: true, len(ref) / 2: true, len(ref) - 1: true}
	for idx := range picks {
		plan := ref[idx]
		u := core.NewSet(fam.n)
		for _, d := range plan.Suspects {
			if !d.Empty() {
				u = u.Union(d)
			}
		}
		next := adversary.EnumState{
			R:         st.R + 1,
			Active:    st.Active.Diff(plan.Crashes),
			Suspected: st.Suspected.Union(u),
			PrevUnion: u,
			Unions:    append(append([]core.Set(nil), st.Unions...), u),
		}
		walkStates(t, fam, next, depth-1)
	}
}

func TestCompiledEnumsMatchReferencePlanLists(t *testing.T) {
	for _, fam := range families(t) {
		st := adversary.EnumState{
			R:         1,
			Active:    core.FullSet(fam.n),
			Suspected: core.NewSet(fam.n),
			PrevUnion: core.NewSet(fam.n),
		}
		walkStates(t, fam, st, fam.explored)
	}
}

// exploreWith runs the standard qkset exploration under the given
// enumeration and returns the result.
func exploreWith(t *testing.T, n, f int, factory core.Factory, enum adversary.Enum) *mc.Result {
	t.Helper()
	inputs := make([]core.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	res, err := mc.Explore(mc.Options{}, mc.CheckRun(mc.RunSpec{
		N:       n,
		Inputs:  inputs,
		Factory: factory,
		Oracle: func(ctx *mc.Ctx) core.Oracle {
			return adversary.Enumerated(ctx, n, enum)
		},
		Props: []mc.Property{
			mc.Validity(inputs),
			mc.KAgreement(f + 1),
		},
		Mark: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCompiledEnumsMatchReferenceInMC holds the wrappers to identical
// model-checking statistics: same schedule counts, same pruning, same
// symmetry skips, same exhaustion — the whole choice tree is the same.
func TestCompiledEnumsMatchReferenceInMC(t *testing.T) {
	const n, f, k = 3, 1, 2
	cases := []struct {
		name    string
		wrapped adversary.Enum
		ref     adversary.Enum
		want    int // exact schedule count, -1 to skip
	}{
		{"per-round-budget", must(t)(adversary.EnumPerRoundBudget(n, f)), refPerRoundBudget(n, f), -1},
		{"k-set", must(t)(adversary.EnumKSet(n, k)), refKSet(n, k), -1},
		{"send-omission", must(t)(adversary.EnumSendOmission(n, f)), refSendOmission(n, f), -1},
		{"sync-crash", must(t)(adversary.EnumSyncCrash(n, f)), refSyncCrash(n, f), -1},
	}
	for _, tc := range cases {
		got := exploreWith(t, n, f, agreement.QuorumKSet(f), tc.wrapped)
		ref := exploreWith(t, n, f, agreement.QuorumKSet(f), tc.ref)
		if got.Counterexample != nil || ref.Counterexample != nil {
			t.Fatalf("%s: unexpected counterexample (wrapped %v, reference %v)",
				tc.name, got.Counterexample, ref.Counterexample)
		}
		if got.Schedules != ref.Schedules || got.Pruned != ref.Pruned ||
			got.SymmetrySkips != ref.SymmetrySkips || got.SleepSkips != ref.SleepSkips ||
			got.Exhausted != ref.Exhausted {
			t.Fatalf("%s: exploration stats diverge:\n  wrapped   %+v\n  reference %+v",
				tc.name, got.Stats, ref.Stats)
		}
		if tc.want >= 0 && got.Schedules != tc.want {
			t.Fatalf("%s: schedules = %d, want %d", tc.name, got.Schedules, tc.want)
		}
	}
}

func must(t *testing.T) func(adversary.Enum, error) adversary.Enum {
	return func(e adversary.Enum, err error) adversary.Enum {
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
}

// TestCompiledEnumPerRoundScheduleCount pins the historical exact count:
// two rounds of 27 plans each under FloodMin — the wrapped enumerator must
// keep the bespoke 729.
func TestCompiledEnumPerRoundScheduleCount(t *testing.T) {
	enum := must(t)(adversary.EnumPerRoundBudget(3, 1))
	ref := refPerRoundBudget(3, 1)
	inputs := []core.Value{0, 1, 2}
	run := func(e adversary.Enum) *mc.Result {
		res, err := mc.Explore(mc.Options{}, mc.CheckRun(mc.RunSpec{
			N: 3, Inputs: inputs, Factory: agreement.FloodMin(2),
			Oracle: func(ctx *mc.Ctx) core.Oracle {
				return adversary.Enumerated(ctx, 3, e)
			},
			Props: []mc.Property{mc.Validity(inputs)},
		}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	got, want := run(enum), run(ref)
	if got.Schedules != 27*27 || want.Schedules != 27*27 {
		t.Fatalf("schedules = %d (wrapped), %d (reference), want 729 for both",
			got.Schedules, want.Schedules)
	}
}

// TestCompiledEnumBuggyShrinksSame plants the wrong-quorum decision rule
// and demands the identical shrunk counterexample replay string from the
// wrapped and reference enumerations.
func TestCompiledEnumBuggyShrinksSame(t *testing.T) {
	const n, f = 3, 1
	wrapped := exploreWith(t, n, f, agreement.QuorumKSetBuggy(f), must(t)(adversary.EnumPerRoundBudget(n, f)))
	ref := exploreWith(t, n, f, agreement.QuorumKSetBuggy(f), refPerRoundBudget(n, f))
	if wrapped.Counterexample == nil || ref.Counterexample == nil {
		t.Fatalf("planted bug not caught (wrapped %v, reference %v)",
			wrapped.Counterexample, ref.Counterexample)
	}
	got := mc.FormatChoices(wrapped.Counterexample.Choices)
	want := mc.FormatChoices(ref.Counterexample.Choices)
	if got != want {
		t.Fatalf("shrunk counterexamples diverge: wrapped %q, reference %q", got, want)
	}
}
