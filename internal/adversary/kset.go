package adversary

import (
	"math/rand"

	"repro/internal/core"
)

// KSetUncertainty returns an adversary for the §3 detector predicate:
// |⋃_i D(i,r) \ ⋂_i D(i,r)| < k in every round. It is built to probe
// Theorem 3.1 as hard as the predicate allows: each round it picks a common
// core C of suspects shared by everyone plus an uncertainty pool U of exactly
// k−1 processes about which observers disagree arbitrarily.
func KSetUncertainty(n, k int, seed int64) core.Oracle {
	rng := rand.New(rand.NewSource(seed))
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		// Keep |C| + |U| < n so no process's D can become all of S.
		maxCore := n - k
		if maxCore < 0 {
			maxCore = 0
		}
		c := pickK(rng, n, active, rng.Intn(maxCore+1))
		u := pickK(rng, n, active.Diff(c), k-1)
		sus := make([]core.Set, n)
		active.ForEach(func(i core.PID) {
			d := c.Clone()
			u.ForEach(func(p core.PID) {
				if rng.Intn(2) == 1 {
					d.Add(p)
				}
			})
			sus[i] = d
		})
		for i := range sus {
			if sus[i].Universe() == 0 {
				sus[i] = core.NewSet(n)
			}
		}
		return core.RoundPlan{Suspects: sus}
	})
}

// Identical returns an adversary for eq. (5) of §5: every process receives
// the same suspect set each round (the k=1 instance of the §3 detector,
// which the semi-synchronous model implements in 2 steps). The common set is
// chosen at random each round, as large as n−1.
func Identical(n int, seed int64) core.Oracle {
	rng := rand.New(rand.NewSource(seed))
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		pool := active.Clone()
		// Leave at least one process unsuspected so D ≠ S.
		members := pool.Members()
		rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		d := core.SetOf(n, members[:rng.Intn(len(members))]...)
		sus := make([]core.Set, n)
		for i := range sus {
			sus[i] = d.Clone()
		}
		return core.RoundPlan{Suspects: sus}
	})
}

// EventuallySpare returns an adversary for the EVENTUAL-accuracy RRFD (the
// round-by-round analogue of the ◇S regime, an instance of the paper's §7
// programme): per-round suspicion budget f throughout, arbitrary suspicion
// of anyone — including the spare — through round stab, and from round
// stab+1 on the spare process is never suspected again.
func EventuallySpare(n, f, stab int, spare core.PID, seed int64) core.Oracle {
	rng := rand.New(rand.NewSource(seed))
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		sus := make([]core.Set, n)
		active.ForEach(func(i core.PID) {
			pool := active.Clone()
			pool.Remove(i)
			if r > stab {
				pool.Remove(spare)
			}
			sus[i] = pickK(rng, n, pool, f)
		})
		for i := range sus {
			if sus[i].Universe() == 0 {
				sus[i] = core.NewSet(n)
			}
		}
		return core.RoundPlan{Suspects: sus}
	})
}

// SpareNeverSuspected returns an adversary for §2 item 6 (the failure
// detector S): one designated process — spare — is never suspected by
// anyone, while everyone else may be suspected arbitrarily, in arbitrarily
// different ways at different observers, round after round. This is the
// wait-free regime: up to n−1 processes may effectively never be heard from.
func SpareNeverSuspected(n int, spare core.PID, seed int64) core.Oracle {
	rng := rand.New(rand.NewSource(seed))
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		sus := make([]core.Set, n)
		active.ForEach(func(i core.PID) {
			pool := active.Clone()
			pool.Remove(spare)
			pool.Remove(i) // keep D ≠ S simple; self-trust is also natural here
			sus[i] = randSubset(rng, n, pool, n-1)
		})
		for i := range sus {
			if sus[i].Universe() == 0 {
				sus[i] = core.NewSet(n)
			}
		}
		return core.RoundPlan{Suspects: sus}
	})
}
