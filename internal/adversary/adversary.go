// Package adversary provides round-by-round fault detectors driven as
// adversaries: core.Oracle implementations that choose suspect sets D(i,r)
// as hostilely as possible while satisfying a given model predicate from
// the paper's §2–§5. Every adversary is deterministic given its seed, so
// experiments are reproducible.
//
// The correspondence adversary ↔ predicate is validated by this package's
// tests: a trace collected from each adversary must satisfy the predicate it
// advertises (and, for the separation examples, violate the ones the paper
// says it can violate).
package adversary

import (
	"math/rand"

	"repro/internal/core"
)

// Benign returns the fault-free oracle: nobody is ever suspected. This is the
// Awerbuch-synchronizer regime the paper contrasts with (§6): with no faults,
// synchrony and asynchrony coincide.
func Benign(n int) core.Oracle {
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		sus := make([]core.Set, n)
		for i := range sus {
			sus[i] = core.NewSet(n)
		}
		return core.RoundPlan{Suspects: sus}
	})
}

// emptySuspects allocates an all-empty suspect slice.
func emptySuspects(n int) []core.Set {
	sus := make([]core.Set, n)
	for i := range sus {
		sus[i] = core.NewSet(n)
	}
	return sus
}

// randSubset returns a subset of pool with at most max elements, chosen
// uniformly at random (each element of pool is considered in a random order
// and kept with probability 1/2 until the cap is hit).
func randSubset(rng *rand.Rand, n int, pool core.Set, max int) core.Set {
	members := pool.Members()
	rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	out := core.NewSet(n)
	for _, p := range members {
		if out.Count() >= max {
			break
		}
		if rng.Intn(2) == 1 {
			out.Add(p)
		}
	}
	return out
}

// pickK returns k distinct members of pool chosen uniformly at random (or all
// of pool if it has fewer than k members).
func pickK(rng *rand.Rand, n int, pool core.Set, k int) core.Set {
	members := pool.Members()
	rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	if k > len(members) {
		k = len(members)
	}
	if k < 0 {
		k = 0
	}
	return core.SetOf(n, members[:k]...)
}
