package adversary

import (
	"math/rand"

	"repro/internal/core"
)

// AsyncBudget returns an adversary for the asynchronous message-passing model
// of §2 item 3 (eq. (3)): every round, every process misses an arbitrary set
// of at most f others. Unlike the synchronous adversaries the missed sets are
// unconstrained across rounds and observers — a process suspected everywhere
// in round r may be heard from by everyone in round r+1.
//
// allowSelf permits p_i ∈ D(i,r), which the model explicitly tolerates ("p_i
// may be late to round r and learn that from the RRFD").
func AsyncBudget(n, f int, allowSelf bool, seed int64) core.Oracle {
	rng := rand.New(rand.NewSource(seed))
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		sus := make([]core.Set, n)
		active.ForEach(func(i core.PID) {
			pool := active.Clone()
			if !allowSelf {
				pool.Remove(i)
			}
			d := pickK(rng, n, pool, rng.Intn(f+1))
			if d.Count() == n { // D(i,r) = S is forbidden
				d.Remove(i)
			}
			sus[i] = d
		})
		for i := range sus {
			if sus[i].Universe() == 0 {
				sus[i] = core.NewSet(n)
			}
		}
		return core.RoundPlan{Suspects: sus}
	})
}

// SharedMem returns an adversary for the SWMR shared-memory model of §2
// item 4 (eqs. (3)+(4)): per-round budget f, and in every round at least one
// "star" process is suspected by nobody — the paper's declarative reading of
// the fact that the first writer of a round is read by everyone.
func SharedMem(n, f int, seed int64) core.Oracle {
	rng := rand.New(rand.NewSource(seed))
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		star := core.PID(rng.Intn(n))
		sus := make([]core.Set, n)
		active.ForEach(func(i core.PID) {
			pool := active.Clone()
			pool.Remove(i)
			pool.Remove(star)
			sus[i] = pickK(rng, n, pool, rng.Intn(f+1))
		})
		for i := range sus {
			if sus[i].Universe() == 0 {
				sus[i] = core.NewSet(n)
			}
		}
		return core.RoundPlan{Suspects: sus}
	})
}

// SnapshotChain returns an adversary for the atomic-snapshot model of §2
// item 5 (eq. (3) + self-inclusion + containment-ordered suspect sets). It
// is the operational picture of a snapshot round: the adversary linearizes
// the round's writes in a random order and gives each process a scan point
// no earlier than its own write and no more than f writes before the end;
// D(i,r) is then the suffix of processes that had not yet written at p_i's
// scan — so all suspect sets are suffixes of one order, totally ordered by
// containment.
func SnapshotChain(n, f int, seed int64) core.Oracle {
	rng := rand.New(rand.NewSource(seed))
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		order := active.Members()
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		pos := make(map[core.PID]int, len(order))
		for idx, p := range order {
			pos[p] = idx
		}
		sus := make([]core.Set, n)
		active.ForEach(func(i core.PID) {
			// Scan point: between max(own write+1, len−f) and len.
			lo := pos[i] + 1
			if m := len(order) - f; m > lo {
				lo = m
			}
			scan := lo + rng.Intn(len(order)-lo+1)
			d := core.NewSet(n)
			for _, p := range order[scan:] {
				d.Add(p)
			}
			sus[i] = d
		})
		for i := range sus {
			if sus[i].Universe() == 0 {
				sus[i] = core.NewSet(n)
			}
		}
		return core.RoundPlan{Suspects: sus}
	})
}

// OrderedBlocks returns an adversary for the iterated immediate-snapshot
// model (the paper's reference [4]): each round it partitions the active
// processes into an ordered sequence of concurrency blocks B_1,...,B_m and
// gives every process in B_k the view B_1 ∪ ... ∪ B_k — exactly the view
// structure of a one-shot immediate snapshot, so the induced suspect sets
// satisfy self-inclusion, the containment chain, AND immediacy.
func OrderedBlocks(n int, seed int64) core.Oracle {
	rng := rand.New(rand.NewSource(seed))
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		members := active.Members()
		rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		sus := make([]core.Set, n)
		prefix := core.NewSet(n)
		idx := 0
		for idx < len(members) {
			// Block size between 1 and the remainder.
			size := 1 + rng.Intn(len(members)-idx)
			block := members[idx : idx+size]
			for _, p := range block {
				prefix.Add(p)
			}
			for _, p := range block {
				sus[p] = prefix.Complement()
			}
			idx += size
		}
		for i := range sus {
			if sus[i].Universe() == 0 {
				sus[i] = core.NewSet(n)
			}
		}
		return core.RoundPlan{Suspects: sus}
	})
}

// NoMutualMissOracle returns an adversary for the alternative shared-memory
// clause of §2 item 4: eq. (3) plus "p_j ∈ D(i,r) ⇒ p_i ∉ D(j,r)". The
// paper notes this does NOT imply eq. (4): misses may form a cycle
// (p_1 misses p_2 misses ... misses p_1), so nobody is seen by all — the
// adversary is biased toward building exactly such cycles, which is what
// the E4 conjecture experiment needs.
func NoMutualMissOracle(n, f int, seed int64) core.Oracle {
	rng := rand.New(rand.NewSource(seed))
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		sus := emptySuspects(n)
		members := active.Members()
		if len(members) >= 3 && rng.Intn(2) == 0 && f >= 1 {
			// Build a miss cycle over a random subset.
			size := 3 + rng.Intn(len(members)-2)
			rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
			cyc := members[:size]
			for i, p := range cyc {
				sus[p].Add(cyc[(i+1)%size])
			}
		}
		// Random extra one-way misses within budget.
		active.ForEach(func(i core.PID) {
			pool := active.Clone()
			pool.Remove(i)
			extra := pickK(rng, n, pool, f-sus[i].Count())
			extra.ForEach(func(j core.PID) {
				if !sus[j].Has(i) && sus[i].Count() < f {
					sus[i].Add(j)
				}
			})
		})
		return core.RoundPlan{Suspects: sus}
	})
}

// BSystemOracle returns an adversary for the "B system" of §2 item 3: in
// every round a set Q of at most t processes may each miss up to t others,
// while all remaining processes miss at most f. With f < t and 2t < n the
// paper uses B to show eq. (3) is not the weakest RRFD equivalent to
// f-resilient asynchronous message passing.
func BSystemOracle(n, f, t int, seed int64) core.Oracle {
	rng := rand.New(rand.NewSource(seed))
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		q := pickK(rng, n, active, t)
		sus := make([]core.Set, n)
		active.ForEach(func(i core.PID) {
			budget := f
			if q.Has(i) {
				budget = t
			}
			pool := active.Clone()
			pool.Remove(i)
			sus[i] = pickK(rng, n, pool, budget)
		})
		for i := range sus {
			if sus[i].Universe() == 0 {
				sus[i] = core.NewSet(n)
			}
		}
		return core.RoundPlan{Suspects: sus}
	})
}
