package adversary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hoalg"
	"repro/internal/mc"
)

// This file wires adversary enumeration into the model checker: instead of
// sampling one hostile plan per round from a seed, an Enum lists *every*
// plan the model predicate allows in the current state, and Enumerated
// turns the list into a core.Oracle that lets mc explore each alternative.
// Shimi–Hurault–Queinnec's round-based characterization (PAPERS.md) is
// what makes this tractable: the predicate families are finitely
// enumerable per round.
//
// The enumerators themselves are compiled from hoalg model expressions
// (one source of truth for checker, enumerator and chaos plan); the four
// constructors below keep their historical signatures as thin wrappers and
// are held to byte-identical plan lists by the reference implementations
// in enum_reference_test.go.

// EnumState is what an Enum may condition on; see hoalg.EnumState.
type EnumState = hoalg.EnumState

// Enum lists every round plan the model allows from the given state; see
// hoalg.Enum.
type Enum = hoalg.Enum

// Enumerated drives an Enum as a core.Oracle for one explored schedule:
// each round it enumerates the allowed plans and asks ctx to pick one,
// labeling options with a plan hash so mc's symmetry reduction collapses
// duplicate plans. It tracks the suspicion history EnumState exposes and
// implements mc.Fingerprinter over it, so RunSpec.Mark-based pruning can
// include the adversary's state.
func Enumerated(ctx *mc.Ctx, n int, enum Enum) core.Oracle {
	return &enumerated{ctx: ctx, n: n, enum: enum,
		suspected: core.NewSet(n), prevUnion: core.NewSet(n)}
}

type enumerated struct {
	ctx       *mc.Ctx
	n         int
	enum      Enum
	suspected core.Set
	prevUnion core.Set
	unions    []core.Set
}

func (e *enumerated) Plan(r int, active core.Set) core.RoundPlan {
	plans := e.enum(EnumState{R: r, Active: active.Clone(),
		Suspected: e.suspected.Clone(), PrevUnion: e.prevUnion.Clone(),
		Unions: append([]core.Set(nil), e.unions...)})
	if len(plans) == 0 {
		panic(fmt.Sprintf("adversary: enum produced no plans in round %d", r))
	}
	labels := make([]uint64, len(plans))
	for i := range plans {
		labels[i] = planHash(&plans[i])
	}
	plan := plans[e.ctx.ChooseLabeled(labels)]

	u := core.NewSet(e.n)
	for _, d := range plan.Suspects {
		if !d.Empty() {
			u = u.Union(d)
		}
	}
	e.prevUnion = u
	e.suspected = e.suspected.Union(u)
	e.unions = append(e.unions, u)
	return plan
}

// Fingerprint implements mc.Fingerprinter over the state future plans
// depend on. It covers the cumulative and previous-round unions — enough
// for the window-free model families explored with Mark-based pruning
// (windowed "eventually" expressions are path properties and must be
// explored with Mark off anyway).
func (e *enumerated) Fingerprint() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) { h = (h ^ v) * 1099511628211 }
	e.suspected.ForEach(func(p core.PID) { mix(uint64(p) + 1) })
	mix(0xabcd)
	e.prevUnion.ForEach(func(p core.PID) { mix(uint64(p) + 1) })
	return h
}

// planHash fingerprints a round plan for the symmetry reduction: two
// options with equal hashes at one node are the same plan.
func planHash(pl *core.RoundPlan) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) { h = (h ^ v) * 1099511628211 }
	for i, d := range pl.Suspects {
		mix(uint64(i) + 0x100)
		d.ForEach(func(p core.PID) { mix(uint64(p) + 1) })
	}
	mix(0x200)
	pl.Crashes.ForEach(func(p core.PID) { mix(uint64(p) + 1) })
	for i, d := range pl.Deliver {
		mix(uint64(i) + 0x300)
		d.ForEach(func(p core.PID) { mix(uint64(p) + 1) })
	}
	return h
}

// enumGuard bounds the states a per-round enumeration may generate:
// exhaustive exploration is only tractable for the small systems the
// paper's separations need.
func enumGuard(kind string, n, max int) error {
	if n < 1 || n > max {
		return fmt.Errorf("adversary: %s enumeration supports 1 <= n <= %d, got n=%d", kind, max, n)
	}
	return nil
}

// compiled lowers a model expression to its enumerator, panicking on
// compile errors: the four wrapped expressions below are enumerable by
// construction once the n guard has passed.
func compiled(e *hoalg.Expr, n int) Enum {
	en, err := e.CompileEnum(n)
	if err != nil {
		panic(fmt.Sprintf("adversary: %v", err))
	}
	return en
}

// EnumPerRoundBudget enumerates eq. (3) — the asynchronous
// message-passing model with at most f crash failures: every process
// independently misses up to f round messages, |D(i,r)| <= f, nobody
// really crashes. n is capped at 4 to keep the per-round family small.
func EnumPerRoundBudget(n, f int) (Enum, error) {
	if err := enumGuard("per-round-budget", n, 4); err != nil {
		return nil, err
	}
	return compiled(hoalg.PerRound(f), n), nil
}

// EnumKSet enumerates the k-set detector family: per round, the
// suspicion uncertainty is bounded by |⋃_i D(i,r) \ ⋂_i D(i,r)| < k.
// n is capped at 3: the family is a filtered n-fold product of subsets.
func EnumKSet(n, k int) (Enum, error) {
	if err := enumGuard("k-set", n, 3); err != nil {
		return nil, err
	}
	return compiled(hoalg.KSetEq3(k), n), nil
}

// EnumSendOmission enumerates eq. (1) — the synchronous model with at
// most f send-omission faults: self-trusting suspicions whose cumulative
// union stays within f distinct processes. n is capped at 4.
func EnumSendOmission(n, f int) (Enum, error) {
	if err := enumGuard("send-omission", n, 4); err != nil {
		return nil, err
	}
	return compiled(hoalg.SendOmission(f), n), nil
}

// EnumSyncCrash enumerates eqs. (1)+(2) — the synchronous model with at
// most f crash faults. A process suspected by anyone in round r crashed
// mid-send: it really crashes at round r+1 (so propagation ⋃D(·,r) ⊆
// D(i,r+1) holds via the engine's crashed-⊆-D rule), and in round r each
// live process independently either received its last message or not.
// n is capped at 4.
func EnumSyncCrash(n, f int) (Enum, error) {
	if err := enumGuard("sync-crash", n, 4); err != nil {
		return nil, err
	}
	return compiled(hoalg.SyncCrash(f), n), nil
}
