package adversary

import (
	"math/rand"

	"repro/internal/core"
)

// Omission returns an adversary for the synchronous send-omission model of
// §2 item 1 (predicate eq. (1)): it picks up to f victim processes whose
// messages may be dropped at any subset of receivers in any round. Victims
// never suspect themselves; the cumulative suspect set stays within the f
// budget because only victims are ever suspected.
//
// rate in [0,1] tunes hostility: the probability that a victim's round
// message is dropped at each receiver.
func Omission(n, f int, rate float64, seed int64) core.Oracle {
	rng := rand.New(rand.NewSource(seed))
	victims := pickK(rng, n, core.FullSet(n), f)
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		sus := emptySuspects(n)
		active.ForEach(func(i core.PID) {
			victims.ForEach(func(v core.PID) {
				if v != i && active.Has(v) && rng.Float64() < rate {
					sus[i].Add(v)
				}
			})
		})
		return core.RoundPlan{Suspects: sus}
	})
}

// Crash returns an adversary for the synchronous crash model of §2 item 2
// (eqs. (1)+(2)): up to f victims crash at scheduled rounds. A victim
// crashing "during" round r is modelled faithfully: it emits its round-r
// message, which reaches a random subset of receivers (the rest suspect it),
// and it stops participating from round r+1 — so everything suspected at
// round r is dead, hence suspected by everyone, at round r+1.
func Crash(n, f int, seed int64) core.Oracle {
	rng := rand.New(rand.NewSource(seed))
	victims := pickK(rng, n, core.FullSet(n), f).Members()
	// Assign each victim a crash round in [1, 2f+2]; multiple victims may
	// share a round.
	crashRound := make(map[core.PID]int, len(victims))
	for _, v := range victims {
		crashRound[v] = 1 + rng.Intn(2*f+2)
	}
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		sus := emptySuspects(n)
		crashes := core.NewSet(n)
		dying := core.NewSet(n) // emit this round, dead next round
		for v, cr := range crashRound {
			if !active.Has(v) {
				continue
			}
			switch {
			case cr < r:
				crashes.Add(v)
			case cr == r:
				dying.Add(v)
			}
		}
		live := active.Diff(crashes)
		dead := core.FullSet(n).Diff(live)
		live.ForEach(func(i core.PID) {
			dead.ForEach(func(v core.PID) { sus[i].Add(v) })
			dying.ForEach(func(v core.PID) {
				// A dying process hears itself; others miss its last
				// message with probability 1/2.
				if v != i && rng.Intn(2) == 1 {
					sus[i].Add(v)
				}
			})
		})
		return core.RoundPlan{Suspects: sus, Crashes: crashes}
	})
}

// ChainCrash returns the classic k-chains crash adversary used for the
// ⌊f/k⌋+1 synchronous lower bound (Corollaries 4.2/4.4, after Chaudhuri,
// Herlihy, Lynch and Tuttle). With inputs v_i = i it maintains k disjoint
// chains, one per value j ∈ {0..k−1}: in round r the current holder of value
// j delivers its message only to the next chain member and then crashes, so
// after m = ⌊f/k⌋ rounds each small value is known to exactly one live
// process. Any algorithm that decides at round m outputs k+1 distinct values
// (the k hidden ones plus value k), violating k-set agreement.
//
// Requires n ≥ k·(m+1)+1 where m = f/k (so the chains and at least one
// bystander fit). The schedule uses exactly k crashes per round for m rounds
// (≤ f total) and satisfies the sync-crash predicate (eqs. (1)+(2)).
func ChainCrash(n, f, k int) core.Oracle {
	m := f / k
	// holder(j, r) = p_{k·(r−1)+j} is the round-r holder of value j.
	holder := func(j, r int) core.PID { return core.PID(k*(r-1) + j) }
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		sus := emptySuspects(n)
		crashes := core.NewSet(n)
		// Crash last round's holders at the start of this round.
		if r > 1 && r <= m+1 {
			for j := 0; j < k; j++ {
				crashes.Add(holder(j, r-1))
			}
		}
		live := active.Diff(crashes)
		dead := core.FullSet(n).Diff(live)
		live.ForEach(func(i core.PID) {
			dead.ForEach(func(v core.PID) { sus[i].Add(v) })
			if r <= m {
				// This round's holders reach only their successors.
				for j := 0; j < k; j++ {
					h, next := holder(j, r), holder(j, r+1)
					if i != next && i != h {
						sus[i].Add(h)
					}
				}
			}
		})
		return core.RoundPlan{Suspects: sus, Crashes: crashes}
	})
}
