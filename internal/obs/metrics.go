package obs

import (
	"encoding/json"
	"sync"
	"time"

	"repro/internal/obs/hist"
)

// Metrics is an Observer that aggregates an execution (or many executions)
// into counters and histograms. All methods are safe for concurrent use, so
// one Metrics may observe parallel sweeps; Snapshot can be taken at any
// time.
//
// Alongside the counters, Metrics feeds a hist.Registry of latency and
// size distributions: per-phase and per-round wall time, oracle-plan
// latency, delivery fan-in, and reliable-link backoff intervals. The
// registry is shared with whatever else meters the process (chaos
// campaigns, par pools) via Hist, and is what /metrics and /snapshot
// expose when the Metrics is served by ServeTelemetry.
type Metrics struct {
	mu sync.Mutex

	runs       int64
	runErrors  int64
	rounds     int64
	emits      int64
	delivered  int64
	suspicions int64
	crashes    int64
	decisions  int64

	roundsToDecision   map[int]int64 // decision round → processes deciding there
	dsetSizes          map[int]int64 // |D(i,r)| → occurrences
	suspicionsPerRound map[int]int64 // round → Σ_i |D(i,r)|
	suspectedCounts    map[int]int64 // process → times appearing in any D(i,r)
	phaseNS            map[string]int64
	phaseCount         map[string]int64
	events             map[string]int64
	faults             FaultSnapshot
	recovery           RecoverySnapshot
	mc                 MCSnapshot
	net                NetSnapshot
	serve              ServeSnapshot

	// Histograms record outside the mutex (hist is sharded-atomic); the
	// hot-path ones are resolved to direct pointers at construction.
	hists    *hist.Registry
	hPlan    *hist.Histogram // oracle_plan_ns
	hEmit    *hist.Histogram // phase_emit_ns
	hDeliver *hist.Histogram // phase_deliver_ns
	hRound   *hist.Histogram // round_ns
	hFanin   *hist.Histogram // deliver_fanin
	hBackoff *hist.Histogram // rlink_backoff_steps
}

// FaultSnapshot aggregates injected-fault and link-recovery counters,
// derived from the faultnet.* and rlink.* event streams.
type FaultSnapshot struct {
	// Drops, Omissions and PartitionDrops split lost messages by cause
	// (the "reason" field of faultnet.drop events).
	Drops          int64 `json:"drops"`
	Omissions      int64 `json:"omissions"`
	PartitionDrops int64 `json:"partition_drops"`

	// PartitionSpans counts declared partition windows.
	PartitionSpans int64 `json:"partition_spans"`

	// Duplicates and Delays count injected extra copies and delayed
	// deliveries.
	Duplicates int64 `json:"duplicates"`
	Delays     int64 `json:"delays"`

	// Retransmissions, DupFramesReceived and GiveUps count the reliable
	// link's recovery work.
	Retransmissions   int64 `json:"retransmissions"`
	DupFramesReceived int64 `json:"dup_frames_received"`
	GiveUps           int64 `json:"give_ups"`

	// WatchdogStalls counts rounds abandoned to suspicion by the round
	// watchdog.
	WatchdogStalls int64 `json:"watchdog_stalls"`
}

func (f FaultSnapshot) empty() bool { return f == FaultSnapshot{} }

// RecoverySnapshot aggregates crash-recovery counters, derived from the
// msgnet.restart and recovery.* event streams emitted by the checkpointing
// engine and the crash-and-recover substrate.
type RecoverySnapshot struct {
	// Restarts counts supervised process restarts (msgnet.restart).
	Restarts int64 `json:"restarts"`

	// Recoveries and Rejoins count journal recoveries and recovered
	// processes that completed a round again.
	Recoveries int64 `json:"recoveries"`
	Rejoins    int64 `json:"rejoins"`

	// ReplayedRounds totals journal rounds restored at recovery;
	// LostRecords totals journal records destroyed by crashes.
	ReplayedRounds int64 `json:"replayed_rounds"`
	LostRecords    int64 `json:"lost_records"`

	// Checkpoints, CheckpointBytes and CheckpointNanos count engine
	// snapshots and their cumulative size and latency.
	Checkpoints     int64 `json:"checkpoints"`
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	CheckpointNanos int64 `json:"checkpoint_ns"`

	// Resumes counts WAL-backed engine resumptions; SnapshotResumes the
	// subset that restored from a snapshot instead of replaying;
	// ResumeReplayedRounds the rounds replayed; TruncatedBytes the torn
	// WAL tail bytes discarded across resumes.
	Resumes              int64 `json:"resumes"`
	SnapshotResumes      int64 `json:"snapshot_resumes"`
	ResumeReplayedRounds int64 `json:"resume_replayed_rounds"`
	TruncatedBytes       int64 `json:"truncated_bytes"`
}

func (r RecoverySnapshot) empty() bool { return r == RecoverySnapshot{} }

// MCSnapshot aggregates model-checking counters, derived from the mc.*
// event stream emitted by internal/mc explorations.
type MCSnapshot struct {
	// Explorations counts completed Explore calls (mc.done events).
	Explorations int64 `json:"explorations"`

	// Schedules counts executed schedules; Sampled the subset completed
	// by the bounded-depth random frontier instead of enumeration.
	Schedules int64 `json:"schedules"`
	Sampled   int64 `json:"sampled"`

	// Pruned counts subtrees cut by state-hash pruning; SymmetrySkips and
	// SleepSkips count options skipped by the two partial-order
	// reductions (totals from mc.done).
	Pruned        int64 `json:"pruned"`
	SymmetrySkips int64 `json:"symmetry_skips"`
	SleepSkips    int64 `json:"sleep_skips"`

	// Violations counts counterexamples found; MaxDepth is the deepest
	// choice-tree node reached by any exploration.
	Violations int64 `json:"violations"`
	MaxDepth   int64 `json:"max_depth"`
}

func (m MCSnapshot) empty() bool { return m == MCSnapshot{} }

// NetSnapshot aggregates network-substrate counters, derived from the
// netsub.* and sockchaos.* event streams of internal/netsub: connection
// lifecycle, redials, backpressure sheds, slow-peer evictions, and the
// socket-level chaos the proxy injected.
type NetSnapshot struct {
	// ConnsOpened and ConnsClosed count connection lifecycle events,
	// outbound (dialed) and inbound (handshaked) alike.
	ConnsOpened int64 `json:"conns_opened"`
	ConnsClosed int64 `json:"conns_closed"`

	// DialFailures and Reconnects count redial work: failed dial
	// attempts and successful re-establishments after a break.
	DialFailures int64 `json:"dial_failures"`
	Reconnects   int64 `json:"reconnects"`

	// Hellos counts accepted inbound handshakes.
	Hellos int64 `json:"hellos"`

	// Backpressure counts sends shed at a full per-peer queue; Evictions
	// counts peers the flow monitor cut off for persistent slowness.
	Backpressure int64 `json:"backpressure"`
	Evictions    int64 `json:"evictions"`

	// FrameErrors counts connections torn down over corrupt or
	// unexpected frames.
	FrameErrors int64 `json:"frame_errors"`

	// SockDrops, SockDelays, SockDuplicates and SockResets count what the
	// socket-level chaos proxy did to data frames.
	SockDrops      int64 `json:"sock_drops"`
	SockDelays     int64 `json:"sock_delays"`
	SockDuplicates int64 `json:"sock_duplicates"`
	SockResets     int64 `json:"sock_resets"`
}

func (n NetSnapshot) empty() bool { return n == NetSnapshot{} }

// ServeSnapshot aggregates agreement-service counters, derived from the
// serve.* event stream of internal/serve: decisions committed, idempotent
// replays, admission-control sheds, deadline abstains, and the
// crash-recovery lifecycle of service nodes.
type ServeSnapshot struct {
	// Decisions counts instance decisions committed (journaled then
	// acked); Adoptions the subset learned from a peer's decide broadcast
	// rather than gathered locally.
	Decisions int64 `json:"decisions"`
	Adoptions int64 `json:"adoptions"`

	// IdempotentReplays counts requests answered from the decided table
	// because their request ID (or instance) had already been settled.
	IdempotentReplays int64 `json:"idempotent_replays"`

	// Sheds counts submissions refused by admission control at a full
	// in-flight table; PeerSheds the subset where the shed proposal
	// arrived from a peer rather than a client.
	Sheds     int64 `json:"sheds"`
	PeerSheds int64 `json:"peer_sheds"`

	// Abstains counts requests that hit their deadline before n-f
	// proposals gathered and were answered StatusAbstain.
	Abstains int64 `json:"abstains"`

	// InstanceEvictions counts undecided instances evicted at their TTL.
	InstanceEvictions int64 `json:"instance_evictions"`

	// Recoveries counts node restarts that replayed a journal;
	// RecoveredDecisions totals the decisions those replays restored.
	Recoveries         int64 `json:"recoveries"`
	RecoveredDecisions int64 `json:"recovered_decisions"`

	// Crashes counts planted chaos crashes fired; BadPeerMsgs counts
	// malformed mesh messages dropped.
	Crashes     int64 `json:"crashes"`
	BadPeerMsgs int64 `json:"bad_peer_msgs"`
}

func (s ServeSnapshot) empty() bool { return s == ServeSnapshot{} }

// NewMetrics returns an empty Metrics.
func NewMetrics() *Metrics {
	m := &Metrics{}
	m.reset()
	return m
}

// Hist returns the registry of latency/size histograms this Metrics
// records into. Callers may register further histograms of their own; the
// registry is what telemetry exporters walk.
func (m *Metrics) Hist() *hist.Registry { return m.hists }

func (m *Metrics) reset() {
	m.runs, m.runErrors, m.rounds = 0, 0, 0
	m.emits, m.delivered, m.suspicions, m.crashes, m.decisions = 0, 0, 0, 0, 0
	m.roundsToDecision = make(map[int]int64)
	m.dsetSizes = make(map[int]int64)
	m.suspicionsPerRound = make(map[int]int64)
	m.suspectedCounts = make(map[int]int64)
	m.phaseNS = make(map[string]int64)
	m.phaseCount = make(map[string]int64)
	m.events = make(map[string]int64)
	m.faults = FaultSnapshot{}
	m.recovery = RecoverySnapshot{}
	m.mc = MCSnapshot{}
	m.net = NetSnapshot{}
	m.serve = ServeSnapshot{}
	// The registry is cleared in place, never replaced: Telemetry handles
	// and pool meters resolved against it stay live across Reset.
	if m.hists == nil {
		m.hists = hist.NewRegistry()
	} else {
		m.hists.Reset()
	}
	m.hPlan = m.hists.Get("oracle_plan_ns")
	m.hEmit = m.hists.Get("phase_emit_ns")
	m.hDeliver = m.hists.Get("phase_deliver_ns")
	m.hRound = m.hists.Get("round_ns")
	m.hFanin = m.hists.Get("deliver_fanin")
	m.hBackoff = m.hists.Get("rlink_backoff_steps")
}

// Reset clears every counter and histogram.
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reset()
}

// RunStart implements Observer.
func (m *Metrics) RunStart(n int) {
	m.mu.Lock()
	m.runs++
	m.mu.Unlock()
}

// RoundStart implements Observer.
func (m *Metrics) RoundStart(r, active int) {
	m.mu.Lock()
	m.rounds++
	m.mu.Unlock()
}

// Emit implements Observer.
func (m *Metrics) Emit(r, p int) {
	m.mu.Lock()
	m.emits++
	m.mu.Unlock()
}

// Deliver implements Observer.
func (m *Metrics) Deliver(r, p, delivered, suspected int) {
	m.mu.Lock()
	m.delivered += int64(delivered)
	m.suspicions += int64(suspected)
	m.dsetSizes[suspected]++
	m.suspicionsPerRound[r] += int64(suspected)
	m.mu.Unlock()
	m.hFanin.Record(int64(delivered))
}

// Suspect implements Observer. Cardinality accounting happens in Deliver
// (which carries |D(p,r)| without the slice); Suspect records what only
// the member list can tell: which processes are being suspected, counted
// per target across every (observer, round) pair.
func (m *Metrics) Suspect(r, p int, suspects []int) {
	if len(suspects) == 0 {
		return
	}
	m.mu.Lock()
	for _, q := range suspects {
		m.suspectedCounts[q]++
	}
	m.mu.Unlock()
}

// Crash implements Observer.
func (m *Metrics) Crash(r int, crashed []int) {
	m.mu.Lock()
	m.crashes += int64(len(crashed))
	m.mu.Unlock()
}

// Decide implements Observer.
func (m *Metrics) Decide(r, p int) {
	m.mu.Lock()
	m.decisions++
	m.roundsToDecision[r]++
	m.mu.Unlock()
}

// RunEnd implements Observer.
func (m *Metrics) RunEnd(rounds, decided int, err error) {
	if err == nil {
		return
	}
	m.mu.Lock()
	m.runErrors++
	m.mu.Unlock()
}

// Phase implements Observer. Non-zero durations additionally feed the
// latency histograms (zero means the engine is running untimed — there is
// nothing to record).
func (m *Metrics) Phase(r int, phase string, d time.Duration) {
	m.mu.Lock()
	m.phaseNS[phase] += int64(d)
	m.phaseCount[phase]++
	m.mu.Unlock()
	if d <= 0 {
		return
	}
	switch phase {
	case "plan":
		m.hPlan.Record(int64(d))
	case "emit":
		m.hEmit.Record(int64(d))
	case "deliver":
		m.hDeliver.Record(int64(d))
	case "round":
		m.hRound.Record(int64(d))
	}
}

// NeedsPhaseTimings implements PhaseTimer: the phase histograms are real
// durations.
func (m *Metrics) NeedsPhaseTimings() bool { return true }

// Event implements Observer. Fault-injection and link-recovery events
// additionally feed the FaultSnapshot counters.
func (m *Metrics) Event(kind string, r, p int, fields map[string]any) {
	m.mu.Lock()
	m.events[kind]++
	switch kind {
	case "faultnet.drop":
		switch fields["reason"] {
		case "omission":
			m.faults.Omissions++
		case "partition":
			m.faults.PartitionDrops++
		default:
			m.faults.Drops++
		}
	case "faultnet.dup":
		m.faults.Duplicates++
	case "faultnet.delay":
		m.faults.Delays++
	case "faultnet.partition_span":
		m.faults.PartitionSpans++
	case "rlink.retransmit":
		m.faults.Retransmissions++
		if iv := asInt64(fields["interval"]); iv > 0 {
			m.hBackoff.Record(iv)
		}
	case "rlink.dup_rx":
		m.faults.DupFramesReceived++
	case "rlink.giveup":
		m.faults.GiveUps++
	case "rlink.watchdog":
		m.faults.WatchdogStalls++
	case "msgnet.restart":
		m.recovery.Restarts++
	case "recovery.recover":
		m.recovery.Recoveries++
		m.recovery.ReplayedRounds += asInt64(fields["replayed_rounds"])
		m.recovery.LostRecords += asInt64(fields["lost_records"])
	case "recovery.rejoin":
		m.recovery.Rejoins++
	case "mc.schedule":
		m.mc.Schedules++
	case "mc.sample":
		m.mc.Sampled++
	case "mc.prune":
		m.mc.Pruned++
	case "mc.violation":
		m.mc.Violations++
	case "mc.done":
		m.mc.Explorations++
		m.mc.SymmetrySkips += asInt64(fields["symmetry_skips"])
		m.mc.SleepSkips += asInt64(fields["sleep_skips"])
		if d := asInt64(fields["max_depth"]); d > m.mc.MaxDepth {
			m.mc.MaxDepth = d
		}
	case "recovery.checkpoint":
		m.recovery.Checkpoints++
		m.recovery.CheckpointBytes += asInt64(fields["bytes"])
		m.recovery.CheckpointNanos += asInt64(fields["nanos"])
	case "recovery.resume":
		m.recovery.Resumes++
		m.recovery.ResumeReplayedRounds += asInt64(fields["replayed_rounds"])
		m.recovery.TruncatedBytes += asInt64(fields["truncated_bytes"])
		if asInt64(fields["from_snapshot"]) > 0 {
			m.recovery.SnapshotResumes++
		}
	case "netsub.conn_open":
		m.net.ConnsOpened++
	case "netsub.conn_close":
		m.net.ConnsClosed++
	case "netsub.dial_fail":
		m.net.DialFailures++
	case "netsub.reconnect":
		m.net.Reconnects++
	case "netsub.hello":
		m.net.Hellos++
	case "netsub.backpressure":
		m.net.Backpressure++
	case "netsub.evict":
		m.net.Evictions++
	case "netsub.frame_error":
		m.net.FrameErrors++
	case "netsub.watchdog":
		// Same semantic as rlink.watchdog: a round abandoned to suspicion.
		m.faults.WatchdogStalls++
	case "serve.decide":
		m.serve.Decisions++
	case "serve.adopt":
		m.serve.Decisions++
		m.serve.Adoptions++
	case "serve.dup":
		m.serve.IdempotentReplays++
	case "serve.shed":
		m.serve.Sheds++
		if b, ok := fields["peer"].(bool); ok && b {
			m.serve.PeerSheds++
		}
	case "serve.abstain":
		m.serve.Abstains++
	case "serve.evict_instance":
		m.serve.InstanceEvictions++
	case "serve.recover":
		m.serve.Recoveries++
		m.serve.RecoveredDecisions += asInt64(fields["decisions"])
	case "serve.crash":
		m.serve.Crashes++
	case "serve.bad_peer_msg":
		m.serve.BadPeerMsgs++
	case "sockchaos.drop":
		m.net.SockDrops++
	case "sockchaos.delay":
		m.net.SockDelays++
	case "sockchaos.duplicate":
		m.net.SockDuplicates++
	case "sockchaos.reset":
		m.net.SockResets++
	}
	m.mu.Unlock()
}

// asInt64 widens the integer types event fields arrive as.
func asInt64(v any) int64 {
	switch n := v.(type) {
	case int:
		return int64(n)
	case int64:
		return n
	case uint64:
		return int64(n)
	case float64:
		return int64(n)
	}
	return 0
}

var _ Observer = (*Metrics)(nil)

// Snapshot is a point-in-time copy of a Metrics, shaped for JSON.
// Histogram maps are keyed by the integer rendered as a decimal string
// (encoding/json requires string keys).
type Snapshot struct {
	// Runs and RunErrors count engine executions observed and how many
	// ended in error.
	Runs      int64 `json:"runs"`
	RunErrors int64 `json:"run_errors"`

	// Rounds is the total rounds executed across runs.
	Rounds int64 `json:"rounds"`

	// Emits and MessagesDelivered count Emit calls and Σ|S(i,r)|.
	Emits             int64 `json:"emits"`
	MessagesDelivered int64 `json:"messages_delivered"`

	// SuspicionsTotal is Σ_{i,r} |D(i,r)|; Crashes counts real crashes;
	// Decisions counts first decisions.
	SuspicionsTotal int64 `json:"suspicions_total"`
	Crashes         int64 `json:"crashes"`
	Decisions       int64 `json:"decisions"`

	// RoundsToDecision maps decision round → number of processes that
	// first decided in that round.
	RoundsToDecision map[int]int64 `json:"rounds_to_decision"`

	// DSetSizeHist maps |D(i,r)| → number of (process, round) pairs with
	// a suspect set of that size.
	DSetSizeHist map[int]int64 `json:"dset_size_hist"`

	// SuspicionsPerRound maps round → Σ_i |D(i,r)| summed across runs.
	SuspicionsPerRound map[int]int64 `json:"suspicions_per_round"`

	// SuspectedCounts maps process → how many times it appeared in some
	// D(i,r) across runs — who gets suspected, where SuspicionsPerRound
	// only says how much. Omitted when no suspicion named a process.
	SuspectedCounts map[int]int64 `json:"suspected_counts,omitempty"`

	// PhaseNanos and PhaseMeanNanos report total and mean wall time per
	// engine phase ("plan", "emit", "deliver").
	PhaseNanos     map[string]int64   `json:"phase_ns"`
	PhaseMeanNanos map[string]float64 `json:"phase_mean_ns"`

	// OraclePlanMeanNanos is the mean latency of one oracle.Plan call —
	// PhaseMeanNanos["plan"], surfaced because it is the number perf
	// work on adversaries tracks.
	OraclePlanMeanNanos float64 `json:"oracle_plan_mean_ns"`

	// Events counts protocol-level events by kind.
	Events map[string]int64 `json:"events,omitempty"`

	// Faults aggregates injected faults and link recovery work; omitted
	// when no fault or recovery event was observed.
	Faults *FaultSnapshot `json:"faults,omitempty"`

	// Recovery aggregates crash-recovery work (restarts, journal replays,
	// checkpoints, WAL resumes); omitted when none was observed.
	Recovery *RecoverySnapshot `json:"recovery,omitempty"`

	// MC aggregates model-checking explorations (schedules, reductions,
	// violations); omitted when no mc.* event was observed.
	MC *MCSnapshot `json:"mc,omitempty"`

	// Net aggregates network-substrate transport work (connections,
	// redials, backpressure, evictions, socket chaos); omitted when no
	// netsub.* or sockchaos.* event was observed.
	Net *NetSnapshot `json:"net,omitempty"`

	// Serve aggregates agreement-service work (decisions, idempotent
	// replays, sheds, abstains, recoveries); omitted when no serve.*
	// event was observed.
	Serve *ServeSnapshot `json:"serve,omitempty"`

	// Hist carries the frozen latency/size histograms (quantile
	// summaries in JSON); omitted when nothing was recorded.
	Hist map[string]hist.Snap `json:"hist,omitempty"`
}

// Snapshot returns a consistent copy of the current state.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Runs:               m.runs,
		RunErrors:          m.runErrors,
		Rounds:             m.rounds,
		Emits:              m.emits,
		MessagesDelivered:  m.delivered,
		SuspicionsTotal:    m.suspicions,
		Crashes:            m.crashes,
		Decisions:          m.decisions,
		RoundsToDecision:   copyIntMap(m.roundsToDecision),
		DSetSizeHist:       copyIntMap(m.dsetSizes),
		SuspicionsPerRound: copyIntMap(m.suspicionsPerRound),
		SuspectedCounts:    copyIntMap(m.suspectedCounts),
		PhaseNanos:         make(map[string]int64, len(m.phaseNS)),
		PhaseMeanNanos:     make(map[string]float64, len(m.phaseNS)),
	}
	for phase, ns := range m.phaseNS {
		s.PhaseNanos[phase] = ns
		if c := m.phaseCount[phase]; c > 0 {
			s.PhaseMeanNanos[phase] = float64(ns) / float64(c)
		}
	}
	s.OraclePlanMeanNanos = s.PhaseMeanNanos["plan"]
	if len(m.events) > 0 {
		s.Events = make(map[string]int64, len(m.events))
		for k, v := range m.events {
			s.Events[k] = v
		}
	}
	if !m.faults.empty() {
		f := m.faults
		s.Faults = &f
	}
	if !m.recovery.empty() {
		r := m.recovery
		s.Recovery = &r
	}
	if !m.mc.empty() {
		mc := m.mc
		s.MC = &mc
	}
	if !m.net.empty() {
		n := m.net
		s.Net = &n
	}
	if !m.serve.empty() {
		sv := m.serve
		s.Serve = &sv
	}
	if hs := m.hists.Snapshot(); len(hs) > 0 {
		s.Hist = hs
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

func copyIntMap(src map[int]int64) map[int]int64 {
	dst := make(map[int]int64, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}
