// Package obs is the execution observability layer: a zero-dependency
// (stdlib-only) metrics and structured-event subsystem for the RRFD engine
// and its substrates.
//
// The design splits observation into three pieces:
//
//   - Observer — the hook interface the engine (core.Run via
//     core.WithObserver) and the substrates (msgnet, agreement, adoptcommit,
//     abd) call at every interesting point of an execution. The engine pays
//     nothing when no observer is attached: every hook site is guarded by a
//     single nil check.
//   - Metrics — a concurrency-safe Observer aggregating counters and
//     histograms (rounds to decision, suspicions per round, D-set sizes,
//     per-phase wall time, protocol events) with a JSON-serializable
//     Snapshot.
//   - EventLog — an Observer streaming every hook as one JSON object per
//     line (JSONL), so full executions can be archived, replayed and diffed
//     alongside the in-memory core.Trace.
//
// Observers deliberately speak in primitive types (ints, slices) rather
// than core.Set / core.PID so that core can depend on obs without a cycle.
// Process identifiers are plain ints; -1 means "no process" and round -1
// means "no round" (used by the asynchronous substrates, which have steps
// rather than rounds).
package obs

import (
	"reflect"
	"time"
)

// Observer receives structured events from an execution. Implementations
// must be safe for use from a single engine goroutine; Metrics and EventLog
// are additionally safe for concurrent use from many executions at once.
//
// Embed Base to implement only the hooks you care about.
type Observer interface {
	// RunStart announces a new engine execution over n processes.
	RunStart(n int)

	// RoundStart announces round r; active is the number of processes
	// that survived into the round (before any round-r crashes).
	RoundStart(r, active int)

	// Emit reports that process p emitted its round-r message.
	Emit(r, p int)

	// Deliver reports the end of process p's round r: it received
	// delivered messages (|S(p,r)|) and was told suspected suspicions
	// (|D(p,r)|).
	Deliver(r, p, delivered, suspected int)

	// Suspect reports D(p,r) by member list. The slice is owned by the
	// caller; observers must copy it if they retain it.
	Suspect(r, p int, suspects []int)

	// Crash reports the processes crashed by the adversary at the start
	// of round r. The slice is owned by the caller.
	Crash(r int, crashed []int)

	// Decide reports that process p first committed to an output in
	// round r.
	Decide(r, p int)

	// RunEnd closes the execution opened by RunStart: rounds executed,
	// processes decided, and the engine error (nil on success).
	RunEnd(rounds, decided int, err error)

	// Phase reports the wall time of one engine phase ("plan", "emit",
	// "deliver") of round r, measured with the engine's injected clock,
	// plus a synthetic whole-round "round" phase whose duration is the
	// sum of the three (no extra clock reads).
	Phase(r int, phase string, d time.Duration)

	// Event is the extension point for protocol-level events outside the
	// engine's fixed vocabulary (message-passing steps, adopt-commit
	// outcomes, register quorums, ...). kind is dot-namespaced
	// ("msgnet.send", "adoptcommit.outcome"); r and p are -1 when not
	// applicable; fields hold event-specific data and may be nil. The
	// map is owned by the caller.
	Event(kind string, r, p int, fields map[string]any)
}

// PhaseTimer is an optional Observer extension letting the engine skip its
// per-phase clock reads. An observer whose NeedsPhaseTimings returns false
// still has Phase called at every phase boundary, but with a zero duration
// and no time.Now cost on the engine's hot path. Observers that do not
// implement PhaseTimer are conservatively assumed to consume timings.
type PhaseTimer interface {
	NeedsPhaseTimings() bool
}

// NeedsPhaseTimings reports whether o wants real durations in its Phase
// hook: false for nil and for observers that opt out via PhaseTimer, true
// for everything else.
func NeedsPhaseTimings(o Observer) bool {
	if isNil(o) {
		return false
	}
	if pt, ok := o.(PhaseTimer); ok {
		return pt.NeedsPhaseTimings()
	}
	return true
}

// Base is an Observer with every hook a no-op. Embed it to implement only
// a subset of the interface.
//
// Base opts out of phase timings (a no-op consumes nothing), and embedders
// inherit that: a type embedding Base whose Phase override does consume its
// duration must also override NeedsPhaseTimings to return true.
type Base struct{}

// RunStart implements Observer.
func (Base) RunStart(int) {}

// RoundStart implements Observer.
func (Base) RoundStart(int, int) {}

// Emit implements Observer.
func (Base) Emit(int, int) {}

// Deliver implements Observer.
func (Base) Deliver(int, int, int, int) {}

// Suspect implements Observer.
func (Base) Suspect(int, int, []int) {}

// Crash implements Observer.
func (Base) Crash(int, []int) {}

// Decide implements Observer.
func (Base) Decide(int, int) {}

// RunEnd implements Observer.
func (Base) RunEnd(int, int, error) {}

// Phase implements Observer.
func (Base) Phase(int, string, time.Duration) {}

// Event implements Observer.
func (Base) Event(string, int, int, map[string]any) {}

// NeedsPhaseTimings implements PhaseTimer: a pure no-op never consumes
// phase durations.
func (Base) NeedsPhaseTimings() bool { return false }

var _ Observer = Base{}
var _ PhaseTimer = Base{}

// multi fans every hook out to several observers in order.
type multi []Observer

// Multi combines observers into one that forwards every hook to each, in
// argument order. Nil entries — including typed nils such as a
// (*Metrics)(nil) passed through the interface — are skipped; with zero
// non-nil observers it returns nil, so the caller's "is anything
// observing?" nil check keeps working.
func Multi(obs ...Observer) Observer {
	var live multi
	for _, o := range obs {
		if !isNil(o) {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}

// isNil reports whether o is nil as an interface or wraps a nil pointer —
// the classic typed-nil footgun when a caller passes an unassigned
// *Metrics or *EventLog variable.
func isNil(o Observer) bool {
	if o == nil {
		return true
	}
	v := reflect.ValueOf(o)
	switch v.Kind() {
	case reflect.Pointer, reflect.Map, reflect.Func, reflect.Chan, reflect.Slice:
		return v.IsNil()
	}
	return false
}

// RunStart implements Observer.
func (m multi) RunStart(n int) {
	for _, o := range m {
		o.RunStart(n)
	}
}

// RoundStart implements Observer.
func (m multi) RoundStart(r, active int) {
	for _, o := range m {
		o.RoundStart(r, active)
	}
}

// Emit implements Observer.
func (m multi) Emit(r, p int) {
	for _, o := range m {
		o.Emit(r, p)
	}
}

// Deliver implements Observer.
func (m multi) Deliver(r, p, delivered, suspected int) {
	for _, o := range m {
		o.Deliver(r, p, delivered, suspected)
	}
}

// Suspect implements Observer.
func (m multi) Suspect(r, p int, suspects []int) {
	for _, o := range m {
		o.Suspect(r, p, suspects)
	}
}

// Crash implements Observer.
func (m multi) Crash(r int, crashed []int) {
	for _, o := range m {
		o.Crash(r, crashed)
	}
}

// Decide implements Observer.
func (m multi) Decide(r, p int) {
	for _, o := range m {
		o.Decide(r, p)
	}
}

// RunEnd implements Observer.
func (m multi) RunEnd(rounds, decided int, err error) {
	for _, o := range m {
		o.RunEnd(rounds, decided, err)
	}
}

// Phase implements Observer.
func (m multi) Phase(r int, phase string, d time.Duration) {
	for _, o := range m {
		o.Phase(r, phase, d)
	}
}

// Event implements Observer.
func (m multi) Event(kind string, r, p int, fields map[string]any) {
	for _, o := range m {
		o.Event(kind, r, p, fields)
	}
}

// NeedsPhaseTimings implements PhaseTimer: a fan-out wants timings if any
// member does.
func (m multi) NeedsPhaseTimings() bool {
	for _, o := range m {
		if NeedsPhaseTimings(o) {
			return true
		}
	}
	return false
}
