package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventLog is an Observer that streams every hook as one JSON object per
// line (JSONL) to a writer. Lines are self-describing: every record has an
// "ev" discriminator, and carries "r" (round) and "p" (process) when they
// apply. The stream complements core.Trace — the trace is the complete
// model-level artifact, the event log is the incremental, diffable,
// tail -f-able one.
//
// The schema, one line shape per event kind:
//
//	{"ev":"run_start","n":8}
//	{"ev":"round_start","r":1,"active":8}
//	{"ev":"phase","r":1,"phase":"plan","ns":1234}
//	{"ev":"crash","r":2,"crashed":[3,5]}
//	{"ev":"emit","r":1,"p":0}
//	{"ev":"suspect","r":1,"p":0,"suspects":[3]}
//	{"ev":"deliver","r":1,"p":0,"s":7,"d":1}
//	{"ev":"decide","r":1,"p":0}
//	{"ev":"run_end","rounds":2,"decided":8}          (+"error" on failure)
//	{"ev":"event","kind":"msgnet.send","r":-1,"p":0,...fields}
//
// All methods are safe for concurrent use. Write errors are sticky: the
// first one is kept, later writes are dropped, and Err reports it.
type EventLog struct {
	mu    sync.Mutex
	enc   *json.Encoder
	lines int64
	err   error
}

// NewEventLog returns an EventLog writing JSONL to w. The caller owns w
// (flushing and closing it); the log only appends lines.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{enc: json.NewEncoder(w)}
}

// Lines returns the number of lines successfully written.
func (l *EventLog) Lines() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lines
}

// Err returns the first write error, if any.
func (l *EventLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *EventLog) write(v any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if err := l.enc.Encode(v); err != nil {
		l.err = err
		return
	}
	l.lines++
}

// RunStart implements Observer.
func (l *EventLog) RunStart(n int) {
	l.write(struct {
		Ev string `json:"ev"`
		N  int    `json:"n"`
	}{"run_start", n})
}

// RoundStart implements Observer.
func (l *EventLog) RoundStart(r, active int) {
	l.write(struct {
		Ev     string `json:"ev"`
		R      int    `json:"r"`
		Active int    `json:"active"`
	}{"round_start", r, active})
}

// Emit implements Observer.
func (l *EventLog) Emit(r, p int) {
	l.write(struct {
		Ev string `json:"ev"`
		R  int    `json:"r"`
		P  int    `json:"p"`
	}{"emit", r, p})
}

// Deliver implements Observer.
func (l *EventLog) Deliver(r, p, delivered, suspected int) {
	l.write(struct {
		Ev string `json:"ev"`
		R  int    `json:"r"`
		P  int    `json:"p"`
		S  int    `json:"s"`
		D  int    `json:"d"`
	}{"deliver", r, p, delivered, suspected})
}

// Suspect implements Observer.
func (l *EventLog) Suspect(r, p int, suspects []int) {
	if len(suspects) == 0 {
		return // benign rounds dominate; elide empty D sets
	}
	l.write(struct {
		Ev       string `json:"ev"`
		R        int    `json:"r"`
		P        int    `json:"p"`
		Suspects []int  `json:"suspects"`
	}{"suspect", r, p, suspects})
}

// Crash implements Observer.
func (l *EventLog) Crash(r int, crashed []int) {
	l.write(struct {
		Ev      string `json:"ev"`
		R       int    `json:"r"`
		Crashed []int  `json:"crashed"`
	}{"crash", r, crashed})
}

// Decide implements Observer.
func (l *EventLog) Decide(r, p int) {
	l.write(struct {
		Ev string `json:"ev"`
		R  int    `json:"r"`
		P  int    `json:"p"`
	}{"decide", r, p})
}

// RunEnd implements Observer.
func (l *EventLog) RunEnd(rounds, decided int, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	l.write(struct {
		Ev      string `json:"ev"`
		Rounds  int    `json:"rounds"`
		Decided int    `json:"decided"`
		Error   string `json:"error,omitempty"`
	}{"run_end", rounds, decided, msg})
}

// Phase implements Observer.
func (l *EventLog) Phase(r int, phase string, d time.Duration) {
	l.write(struct {
		Ev    string `json:"ev"`
		R     int    `json:"r"`
		Phase string `json:"phase"`
		NS    int64  `json:"ns"`
	}{"phase", r, phase, int64(d)})
}

// NeedsPhaseTimings implements PhaseTimer: phase lines carry real
// nanosecond durations.
func (l *EventLog) NeedsPhaseTimings() bool { return true }

// Event implements Observer.
func (l *EventLog) Event(kind string, r, p int, fields map[string]any) {
	l.write(struct {
		Ev     string         `json:"ev"`
		Kind   string         `json:"kind"`
		R      int            `json:"r"`
		P      int            `json:"p"`
		Fields map[string]any `json:"fields,omitempty"`
	}{"event", kind, r, p, fields})
}

var _ Observer = (*EventLog)(nil)
