package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.RunStart(4)
	l.RoundStart(1, 4)
	l.Phase(1, "plan", 1500*time.Nanosecond)
	l.Crash(1, []int{3})
	l.Emit(1, 0)
	l.Suspect(1, 0, []int{3})
	l.Suspect(1, 1, nil) // empty D set: elided
	l.Deliver(1, 0, 3, 1)
	l.Decide(1, 0)
	l.Event("msgnet.send", -1, 2, map[string]any{"to": 1})
	l.RunEnd(1, 1, nil)

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("want 10 lines (empty suspect elided), got %d:\n%s", len(lines), buf.String())
	}
	if int(l.Lines()) != len(lines) {
		t.Fatalf("Lines() = %d, file has %d", l.Lines(), len(lines))
	}
	wantEv := []string{"run_start", "round_start", "phase", "crash", "emit", "suspect", "deliver", "decide", "event", "run_end"}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i+1, err, line)
		}
		if rec["ev"] != wantEv[i] {
			t.Fatalf("line %d: ev=%v want %v", i+1, rec["ev"], wantEv[i])
		}
	}
	if !strings.Contains(lines[5], `"suspects":[3]`) {
		t.Fatalf("suspect line lacks members: %s", lines[5])
	}
	if !strings.Contains(lines[8], `"kind":"msgnet.send"`) || !strings.Contains(lines[8], `"to":1`) {
		t.Fatalf("event line: %s", lines[8])
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestEventLogRunEndError(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.RunEnd(3, 0, errors.New("round limit"))
	if !strings.Contains(buf.String(), `"error":"round limit"`) {
		t.Fatalf("missing error field: %s", buf.String())
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestEventLogStickyError(t *testing.T) {
	w := &failWriter{}
	l := NewEventLog(w)
	l.Emit(1, 0)
	l.Emit(1, 1)
	l.Emit(1, 2)
	if l.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if l.Lines() != 0 {
		t.Fatalf("failed writes counted: %d", l.Lines())
	}
	if w.n != 1 {
		t.Fatalf("writer called %d times after sticky error, want 1", w.n)
	}
}

func TestEventLogConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Deliver(i, w, 3, 1)
			}
		}(w)
	}
	wg.Wait()
	if l.Lines() != 800 {
		t.Fatalf("lines = %d, want 800", l.Lines())
	}
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("interleaved line %d: %v", i+1, err)
		}
	}
}
