package trace

import (
	"encoding/json"
	"io"
	"os"

	"repro/internal/obs"
)

var _ obs.Observer = (*Tracer)(nil)
var _ obs.PhaseTimer = (*Tracer)(nil)

// event is one Chrome/Perfetto trace event. Field order is fixed so the
// export is byte-stable; args maps serialize with sorted keys
// (encoding/json), so the whole file is a deterministic function of the
// recorded hook sequence.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// file is the JSON-object form of the trace-event format.
type file struct {
	TraceEvents []event `json:"traceEvents"`
}

// Perfetto renders the recorded events as Chrome/Perfetto trace-event
// JSON (the "JSON object format": {"traceEvents": [...]}).
func (t *Tracer) Perfetto() ([]byte, error) {
	t.mu.Lock()
	evs := make([]event, len(t.evs))
	copy(evs, t.evs)
	t.mu.Unlock()
	return json.Marshal(file{TraceEvents: evs})
}

// Export writes the Perfetto JSON to w.
func (t *Tracer) Export(w io.Writer) error {
	data, err := t.Perfetto()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ExportFile writes the Perfetto JSON to path, creating or truncating it.
func (t *Tracer) ExportFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
