// Package trace renders executions as causal span traces: an obs.Observer
// that turns the engine's hook stream into run → round → phase spans,
// message flows linking each Emit to the Delivers that heard it, and
// suspicion/crash/decide instants, exported as Chrome/Perfetto
// trace-event JSON (chrome://tracing, https://ui.perfetto.dev).
//
// Opened in a viewer, one run reads as a Heard-Of diagram: each process
// is a track, each round a span on the engine track, and the flow arrows
// into process p's round-r "deliver" slice are exactly S(p,r) — the
// senders p heard — while the missing arrows are D(p,r), the suspects.
//
// Timestamps are logical, not wall-clock: every hook advances a virtual
// tick, and substrate events carry the scheduler's step clock in their
// args. A trace is therefore a pure function of the schedule — replaying
// the same chaos seed or mc choice string produces byte-identical output
// — and wall-time never leaks into the export (the Phase hook's duration
// is deliberately ignored; Tracer opts out of phase timings entirely).
package trace

import (
	"strconv"
	"sync"
	"time"
)

// Tracer is an Observer recording an execution (or a sequence of
// executions) as trace events. Each observed run becomes one Perfetto
// "process" (pid = run index) whose tracks are the engine (tid 0) and the
// n protocol processes (tid 1+p). Safe for concurrent use, though the
// engine delivers hooks from a single goroutine per run; campaigns
// observing with a Tracer serialize to one worker like any observer.
//
// The zero value is not usable; call New.
type Tracer struct {
	mu  sync.Mutex
	evs []event

	ts  int64 // virtual tick, monotonic across runs
	run int   // pid of the current run; -1 before the first RunStart
	n   int

	runStart   int64
	roundStart int64
	phaseStart int64
	curRound   int
	roundOpen  bool

	flowNext int64 // next unused flow id
	flowBase int64 // flow id of sender 0 in the current round

	emitted   []bool  // sender emitted in the current round
	suspected [][]int // per-process D(p,r) of the current round, set by Suspect

	connOpen map[string]int64 // open netsub connection → open tick
}

// New returns an empty Tracer.
func New() *Tracer {
	return &Tracer{run: -1}
}

// tick returns the current virtual timestamp and advances it.
func (t *Tracer) tick() int64 {
	ts := t.ts
	t.ts++
	return ts
}

// meta appends a metadata record naming a track.
func (t *Tracer) meta(kind string, tid int, name string) {
	t.evs = append(t.evs, event{
		Name: kind, Ph: "M", Pid: t.run, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// RunStart implements obs.Observer.
func (t *Tracer) RunStart(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.run++
	t.n = n
	t.meta("process_name", 0, "run")
	t.meta("thread_name", 0, "engine")
	for p := 0; p < n; p++ {
		t.meta("thread_name", 1+p, procName(p))
	}
	t.runStart = t.tick()
	t.roundOpen = false
	t.emitted = make([]bool, n)
	t.suspected = make([][]int, n)
}

// closeRound emits the span of the round in flight, if any.
func (t *Tracer) closeRound() {
	if !t.roundOpen {
		return
	}
	t.span("round "+strconv.Itoa(t.curRound), 0, t.roundStart, t.ts, nil)
	t.roundOpen = false
}

// RoundStart implements obs.Observer.
func (t *Tracer) RoundStart(r, active int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closeRound()
	t.curRound = r
	t.roundOpen = true
	t.roundStart = t.tick()
	t.phaseStart = t.ts
	t.flowBase = t.flowNext
	t.flowNext += int64(t.n)
	for p := range t.emitted {
		t.emitted[p] = false
		t.suspected[p] = nil
	}
	t.instant("round_start", 0, map[string]any{"round": r, "active": active})
}

// Emit implements obs.Observer: a one-tick slice on p's track opening the
// message flow other processes' Delivers terminate.
func (t *Tracer) Emit(r, p int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.tick()
	t.span("emit", 1+p, ts, ts+1, nil)
	t.flow("s", "", t.flowBase+int64(p), ts, 1+p)
	if p >= 0 && p < len(t.emitted) {
		t.emitted[p] = true
	}
}

// Suspect implements obs.Observer: records D(p,r) — both as an instant on
// p's track and internally, so the following Deliver can draw flows from
// exactly the senders p heard (emitted minus suspected).
func (t *Tracer) Suspect(r, p int, suspects []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(suspects) > 0 {
		t.instant("suspect", 1+p, map[string]any{"suspects": append([]int(nil), suspects...)})
	}
	if p >= 0 && p < len(t.suspected) {
		t.suspected[p] = append(t.suspected[p][:0], suspects...)
	}
}

// Deliver implements obs.Observer: a one-tick slice on p's track
// terminating one flow per heard sender.
func (t *Tracer) Deliver(r, p, delivered, suspected int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.tick()
	t.span("deliver", 1+p, ts, ts+1, map[string]any{
		"delivered": delivered, "suspected": suspected,
	})
	if p < 0 || p >= len(t.suspected) {
		return
	}
	heard := make(map[int]bool, len(t.emitted))
	for q, ok := range t.emitted {
		heard[q] = ok
	}
	for _, q := range t.suspected[p] {
		heard[q] = false
	}
	for q := 0; q < len(t.emitted); q++ {
		if heard[q] {
			t.flow("f", "e", t.flowBase+int64(q), ts, 1+p)
		}
	}
}

// Crash implements obs.Observer.
func (t *Tracer) Crash(r int, crashed []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range crashed {
		t.instant("crash", 1+p, map[string]any{"round": r})
	}
}

// Decide implements obs.Observer.
func (t *Tracer) Decide(r, p int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.instant("decide", 1+p, map[string]any{"round": r})
}

// Phase implements obs.Observer: the phase span covers the hooks observed
// since the previous phase boundary. The wall-clock duration is ignored —
// trace output must stay a pure function of the schedule — and the
// synthetic whole-round "round" phase is skipped (the round span already
// covers it).
func (t *Tracer) Phase(r int, phase string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if phase == "round" {
		return
	}
	end := t.tick() + 1
	t.span("phase:"+phase, 0, t.phaseStart, end, nil)
	t.phaseStart = t.ts
}

// NeedsPhaseTimings implements obs.PhaseTimer: logical spans only, no
// engine clock reads on the Tracer's account.
func (t *Tracer) NeedsPhaseTimings() bool { return false }

// RunEnd implements obs.Observer.
func (t *Tracer) RunEnd(rounds, decided int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closeRound()
	args := map[string]any{"rounds": rounds, "decided": decided}
	if err != nil {
		args["error"] = err.Error()
	}
	end := t.tick() + 1
	t.span("run", 0, t.runStart, end, args)
}

// Event implements obs.Observer: substrate events become instants on the
// owning process's track, carrying their fields — including the scheduler
// "step" clock — as args. Wall-clock fields ("nanos") are dropped so the
// export stays deterministic.
//
// Network connection lifecycles are special-cased into spans: a
// netsub.conn_open opens a slice on the owning node's track that the
// matching netsub.conn_close ends, so a trace of a networked run shows
// each outbound connection's lifetime — and each redial gap — as
// geometry rather than paired instants.
func (t *Tracer) Event(kind string, r, p int, fields map[string]any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tid := 0
	if p >= 0 {
		tid = 1 + p
	}
	if kind == "netsub.conn_open" || kind == "netsub.conn_close" {
		key := connKey(p, fields)
		if kind == "netsub.conn_open" {
			if t.connOpen == nil {
				t.connOpen = make(map[string]int64)
			}
			t.connOpen[key] = t.tick()
			return
		}
		if start, ok := t.connOpen[key]; ok {
			delete(t.connOpen, key)
			args := map[string]any{"peer": fields["peer"], "dir": fields["dir"]}
			if reason, has := fields["reason"]; has {
				args["reason"] = reason
			}
			t.span("conn "+connName(p, fields), tid, start, t.tick()+1, args)
			return
		}
		// A close without a recorded open falls through as an instant.
	}
	var args map[string]any
	for k, v := range fields {
		if k == "nanos" {
			continue
		}
		if args == nil {
			args = make(map[string]any, len(fields))
		}
		args[k] = v
	}
	if r >= 0 {
		if args == nil {
			args = make(map[string]any, 1)
		}
		args["round"] = r
	}
	t.instant(kind, tid, args)
}

// span appends a complete ("X") event covering [start, end).
func (t *Tracer) span(name string, tid int, start, end int64, args map[string]any) {
	dur := end - start
	if dur < 1 {
		dur = 1
	}
	t.evs = append(t.evs, event{
		Name: name, Ph: "X", Ts: start, Dur: dur, Pid: t.run, Tid: tid, Args: args,
	})
}

// instant appends a thread-scoped instant ("i") event at the next tick.
func (t *Tracer) instant(name string, tid int, args map[string]any) {
	t.evs = append(t.evs, event{
		Name: name, Ph: "i", Ts: t.tick(), Pid: t.run, Tid: tid, S: "t", Args: args,
	})
}

// flow appends a flow event ("s" start / "f" finish) with binding point bp.
func (t *Tracer) flow(ph, bp string, id, ts int64, tid int) {
	t.evs = append(t.evs, event{
		Name: "msg", Ph: ph, Ts: ts, Pid: t.run, Tid: tid, ID: id + 1, BP: bp,
	})
}

// Len returns the number of recorded trace events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.evs)
}

// Reset drops every recorded event and restarts run numbering.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.evs = nil
	t.ts = 0
	t.run = -1
	t.flowNext = 0
	t.roundOpen = false
	t.connOpen = nil
}

// procName renders a process track name ("p0", "p1", ...).
func procName(p int) string { return "p" + strconv.Itoa(p) }

// connKey identifies one node's connection to a peer in a direction.
func connKey(p int, fields map[string]any) string {
	return strconv.Itoa(p) + "/" + connName(p, fields)
}

// connName renders a connection span name ("p0→p2 out").
func connName(p int, fields map[string]any) string {
	peer := -1
	switch q := fields["peer"].(type) {
	case int:
		peer = q
	case int64:
		peer = int(q)
	}
	dir, _ := fields["dir"].(string)
	if dir == "" {
		dir = "out"
	}
	return procName(p) + "→" + procName(peer) + " " + dir
}
