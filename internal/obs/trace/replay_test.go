package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/obs/trace"
)

// TestChaosViolationReplayTrace finds a real safety violation with the
// deliberately broken quorum rule, then replays its minimized reproducer
// under a Tracer twice: both exports must validate as Perfetto JSON and
// be byte-identical — a violation replay is a shareable artifact.
func TestChaosViolationReplayTrace(t *testing.T) {
	cfg := chaos.Config{
		N: 6, F: 2, K: 3,
		Runs:          60,
		Seed:          13,
		DropRate:      1.0,
		OmitRate:      0.8,
		PartitionRate: 0.6,
		WatchdogSteps: 300,
		QuorumBug:     true,
	}
	sum := chaos.Run(cfg)
	if sum.Ok() {
		t.Fatal("quorum bug not caught; no violation to replay")
	}
	v := sum.Violations[0]

	replayOnce := func() []byte {
		tr := trace.New()
		replay := cfg
		replay.Observer = tr
		if _, _, _, err := chaos.Execute(replay, v.SchedSeed, v.MinPlan, v.Crashes); err != nil {
			t.Fatalf("replay failed: %v", err)
		}
		data, err := tr.Perfetto()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	first := replayOnce()
	validatePerfetto(t, first)
	if again := replayOnce(); !bytes.Equal(first, again) {
		t.Fatal("chaos violation replay traces differ across reruns of the same seed")
	}
}

// TestMCCounterexampleReplayTrace explores the planted quorum bug to a
// shrunk counterexample, then replays its choice string under a Tracer
// twice: valid Perfetto JSON, byte-identical across reruns.
func TestMCCounterexampleReplayTrace(t *testing.T) {
	enum, err := adversary.EnumPerRoundBudget(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := mc.RunSpec{
		N:       3,
		Inputs:  []core.Value{0, 1, 2},
		Factory: agreement.QuorumKSetBuggy(1),
		Oracle: func(ctx *mc.Ctx) core.Oracle {
			return adversary.Enumerated(ctx, 3, enum)
		},
		Props: []mc.Property{
			mc.Validity([]core.Value{0, 1, 2}),
			mc.KAgreement(2),
		},
	}
	res, err := mc.Explore(mc.Options{}, mc.CheckRun(spec))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Fatal("planted bug not found; no counterexample to replay")
	}
	choices := res.Counterexample.Choices

	replayOnce := func() []byte {
		tr := trace.New()
		traced := spec
		traced.Observer = tr
		if err := mc.Replay(choices, mc.CheckRun(traced)); err == nil {
			t.Fatal("counterexample replay did not reproduce the violation")
		}
		data, err := tr.Perfetto()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	first := replayOnce()
	validatePerfetto(t, first)
	if again := replayOnce(); !bytes.Equal(first, again) {
		t.Fatal("mc counterexample replay traces differ across reruns of the same choice string")
	}
}
