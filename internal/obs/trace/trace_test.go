package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/obs/trace"
)

// minAlg decides the minimum input it has heard by round 2.
type minAlg struct {
	min core.Value
}

func minFactory(me core.PID, n int, input core.Value) core.Algorithm {
	return &minAlg{min: input}
}

func (a *minAlg) Emit(r int) core.Message { return a.min }

func (a *minAlg) Deliver(r int, msgs map[core.PID]core.Message, suspects core.Set) (core.Value, bool) {
	for _, m := range msgs {
		if v := m.(int); v < a.min.(int) {
			a.min = v
		}
	}
	if r >= 2 {
		return a.min, true
	}
	return nil, false
}

// crashOneOracle runs round 1 clean, then crashes process n-1 at round 2
// and keeps it suspected by every live process from then on.
func crashOneOracle(n int) core.Oracle {
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		plan := core.RoundPlan{Suspects: make([]core.Set, n)}
		for i := 0; i < n; i++ {
			if r >= 2 {
				plan.Suspects[i] = core.SetOf(n, core.PID(n-1))
			} else {
				plan.Suspects[i] = core.SetOf(n)
			}
		}
		if r == 2 {
			plan.Crashes = core.SetOf(n, core.PID(n-1))
		}
		return plan
	})
}

// traceOneRun executes the reference run under a fresh Tracer and returns
// the Perfetto bytes.
func traceOneRun(t *testing.T) []byte {
	t.Helper()
	tr := trace.New()
	inputs := []core.Value{3, 1, 2, 0}
	_, err := core.Run(4, inputs, minFactory, crashOneOracle(4),
		core.WithMaxRounds(4), core.WithObserver(tr))
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// validatePerfetto decodes data as Chrome/Perfetto trace-event JSON and
// checks the structural schema every viewer relies on.
func validatePerfetto(t *testing.T, data []byte) {
	t.Helper()
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		t.Fatalf("not a trace-event JSON object: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	flowStarts := map[float64]bool{}
	for i, ev := range f.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		if name == "" {
			t.Fatalf("event %d: empty name: %v", i, ev)
		}
		for _, key := range []string{"pid", "tid"} {
			if _, ok := ev[key].(float64); !ok {
				t.Fatalf("event %d (%s): missing %s: %v", i, name, key, ev)
			}
		}
		if ph != "M" {
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				t.Fatalf("event %d (%s): bad ts: %v", i, name, ev)
			}
		}
		switch ph {
		case "X":
			if dur, ok := ev["dur"].(float64); !ok || dur < 1 {
				t.Fatalf("event %d (%s): complete event without positive dur: %v", i, name, ev)
			}
		case "i":
			if s, _ := ev["s"].(string); s != "t" && s != "p" && s != "g" {
				t.Fatalf("event %d (%s): instant without scope: %v", i, name, ev)
			}
		case "s", "f":
			id, ok := ev["id"].(float64)
			if !ok {
				t.Fatalf("event %d (%s): flow event without id: %v", i, name, ev)
			}
			if ph == "s" {
				flowStarts[id] = true
			} else {
				if bp, _ := ev["bp"].(string); bp != "e" {
					t.Fatalf("event %d (%s): flow finish without bp=e: %v", i, name, ev)
				}
				if !flowStarts[id] {
					t.Fatalf("event %d (%s): flow finish %v before any start", i, name, id)
				}
			}
		case "M":
			if name != "process_name" && name != "thread_name" {
				t.Fatalf("event %d: unexpected metadata %q", i, name)
			}
		default:
			t.Fatalf("event %d (%s): unexpected phase %q", i, name, ph)
		}
	}
}

func TestTracerPerfettoSchema(t *testing.T) {
	validatePerfetto(t, traceOneRun(t))
}

func TestTracerDeterministic(t *testing.T) {
	first := traceOneRun(t)
	for i := 0; i < 2; i++ {
		if again := traceOneRun(t); !bytes.Equal(first, again) {
			t.Fatalf("rerun %d produced different trace bytes:\n%s\nvs\n%s", i+1, first, again)
		}
	}
}

// TestTracerFlows checks the Heard-Of reading of a trace: round 1 is
// clean (every deliver terminates a flow from every emitter), and from
// round 2 the crashed process neither emits nor receives while the
// suspicion instants name it.
func TestTracerFlows(t *testing.T) {
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceOneRun(t), &f); err != nil {
		t.Fatal(err)
	}
	type ev struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	counts := map[string]int{}
	suspectInstants := 0
	for _, raw := range f.TraceEvents {
		var e ev
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatal(err)
		}
		counts[e.Name+"/"+e.Ph]++
		if e.Name == "suspect" {
			suspectInstants++
		}
	}
	// 4 emitters in round 1 + 3 in round 2 (p3 crashed; the run ends at
	// round 2 once every live process decided).
	if got := counts["emit/X"]; got != 4+3 {
		t.Fatalf("emit spans = %d, want 7", got)
	}
	if got := counts["msg/s"]; got != 7 {
		t.Fatalf("flow starts = %d, want one per emit (7)", got)
	}
	// Flow finishes: round 1 is all-hear-all (4×4); round 2 has 3 live
	// processes hearing 3 emitters each.
	if got := counts["msg/f"]; got != 16+9 {
		t.Fatalf("flow finishes = %d, want 25", got)
	}
	if got := counts["decide/i"]; got != 3 {
		t.Fatalf("decide instants = %d, want 3", got)
	}
	if got := counts["crash/i"]; got != 1 {
		t.Fatalf("crash instants = %d, want 1", got)
	}
	if suspectInstants == 0 {
		t.Fatal("no suspicion instants recorded")
	}
	if got := counts["round 1/X"]; got != 1 {
		t.Fatalf("round 1 spans = %d, want 1", got)
	}
	for _, phase := range []string{"plan", "emit", "deliver"} {
		if counts["phase:"+phase+"/X"] == 0 {
			t.Fatalf("no phase:%s spans", phase)
		}
	}
}

// TestTracerReset: a reset tracer restarts run numbering and drops state.
func TestTracerReset(t *testing.T) {
	tr := trace.New()
	inputs := []core.Value{3, 1, 2, 0}
	if _, err := core.Run(4, inputs, minFactory, crashOneOracle(4),
		core.WithMaxRounds(4), core.WithObserver(tr)); err != nil {
		t.Fatal(err)
	}
	first, err := tr.Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("len after reset = %d", tr.Len())
	}
	if _, err := core.Run(4, inputs, minFactory, crashOneOracle(4),
		core.WithMaxRounds(4), core.WithObserver(tr)); err != nil {
		t.Fatal(err)
	}
	again, err := tr.Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("trace after Reset differs from a fresh tracer's")
	}
}

// TestTracerConnSpans checks that paired netsub conn_open/conn_close
// events become lifecycle spans on the owning node's track while an
// unmatched close degrades into a plain instant, and that the result
// still validates as Perfetto JSON.
func TestTracerConnSpans(t *testing.T) {
	tr := trace.New()
	tr.RunStart(3)
	tr.Event("netsub.conn_open", -1, 0, map[string]any{"peer": 1, "dir": "out"})
	tr.Event("netsub.conn_open", -1, 1, map[string]any{"peer": 0, "dir": "in"})
	tr.Event("netsub.hello", -1, 1, map[string]any{"peer": 0, "incarnation": 1})
	tr.Event("netsub.conn_close", -1, 0, map[string]any{"peer": 1, "dir": "out", "reason": "eof"})
	// Close for a connection never opened: must not panic, renders as instant.
	tr.Event("netsub.conn_close", -1, 2, map[string]any{"peer": 0, "dir": "in", "reason": "eof"})
	tr.RunEnd(1, 3, nil)

	data, err := tr.Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	validatePerfetto(t, data)

	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	spans := map[string]map[string]any{}
	instants := map[string]int{}
	for _, ev := range f.TraceEvents {
		name, _ := ev["name"].(string)
		switch ev["ph"] {
		case "X":
			spans[name] = ev
		case "i":
			instants[name]++
		}
	}
	conn, ok := spans["conn p0→p1 out"]
	if !ok {
		t.Fatalf("missing outbound conn span; spans: %v", spans)
	}
	if tid, _ := conn["tid"].(float64); tid != 1 {
		t.Fatalf("conn span on tid %v, want owning process track 1", conn["tid"])
	}
	args, _ := conn["args"].(map[string]any)
	if args["reason"] != "eof" || args["dir"] != "out" {
		t.Fatalf("conn span args = %v", args)
	}
	if dur, _ := conn["dur"].(float64); dur < 1 {
		t.Fatalf("conn span without duration: %v", conn)
	}
	if instants["netsub.conn_close"] != 1 {
		t.Fatalf("unmatched close should render as exactly one instant, got %d", instants["netsub.conn_close"])
	}
	if instants["netsub.conn_open"] != 0 {
		t.Fatal("matched opens must not also render as instants")
	}

	// The inbound connection on p1 stays open through RunEnd: no span,
	// and Reset must forget it.
	if _, ok := spans["conn p1→p0 in"]; ok {
		t.Fatal("still-open connection must not emit a span")
	}
	tr.Reset()
	tr.RunStart(3)
	tr.Event("netsub.conn_close", -1, 1, map[string]any{"peer": 0, "dir": "in", "reason": "eof"})
	tr.RunEnd(0, 0, nil)
	data, err = tr.Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"conn p1→p0 in"`)) {
		t.Fatal("Reset leaked an open-connection record across runs")
	}
}
