// Package hist provides mergeable log-bucketed (HDR-style) latency and
// size histograms with sharded atomic recording and quantile queries.
//
// Values are non-negative int64s (nanoseconds, message counts, queue
// depths). The bucket layout is log-linear: each power-of-two octave is
// split into 16 linear sub-buckets, so any recorded value lands in a
// bucket whose width is at most 1/16 of its magnitude — quantile answers
// carry a bounded ~6.25% relative error while the whole histogram stays a
// fixed 976 buckets regardless of range. Values 0..31 are exact.
//
// Record is safe for concurrent use and contention-free on the fast path:
// counts are split across a small set of shards, each updated with plain
// atomic adds, and a shard is picked per call from a cheap per-goroutine
// random source. Readers (Snapshot, Count) sum across shards; they see
// every completed Record but take no lock and stop no writer.
//
// Histograms are mergeable at two levels: Histogram.Add folds another
// live histogram in, and Snap.Merge combines frozen snapshots — both are
// exact (bucket-wise addition), so per-worker histograms can be combined
// without precision loss.
package hist

import (
	"encoding/json"
	"math/bits"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	subBits  = 4
	subCount = 1 << subBits // linear sub-buckets per octave

	// nBuckets covers every uint63 value: indexes 0..31 are exact, then
	// 16 sub-buckets for each octave up to 2^63.
	nBuckets = subCount * (64 - subBits + 1)

	// nShards spreads concurrent recorders across cachelines. Power of
	// two so the shard pick is a mask.
	nShards = 8
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < 2*subCount {
		return int(u) // exact buckets 0..31
	}
	h := bits.Len64(u) // 2^(h-1) <= u < 2^h, h >= 6
	shift := uint(h - 1 - subBits)
	sub := (u >> shift) & (subCount - 1)
	return subCount*(h-subBits) + int(sub)
}

// bucketUpper returns the largest value mapping to bucket i.
func bucketUpper(i int) int64 {
	if i < 2*subCount {
		return int64(i)
	}
	h := i/subCount + subBits
	shift := uint(h - 1 - subBits)
	sub := uint64(i % subCount)
	return int64(((subCount + sub + 1) << shift) - 1)
}

// shard is one recorder lane, padded out to its own cacheline region.
type shard struct {
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	counts [nBuckets]atomic.Int64
	_      [64]byte
}

// Histogram is a concurrency-safe log-bucketed histogram. The zero value
// is not usable; call New.
type Histogram struct {
	shards *[nShards]shard
}

// New returns an empty histogram.
func New() *Histogram {
	return &Histogram{shards: new([nShards]shard)}
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	s := &h.shards[rand.Uint64()&(nShards-1)]
	s.counts[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		m := s.max.Load()
		if v <= m || s.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Reset clears every observation in place, preserving the histogram's
// identity: pointers handed out earlier keep recording into it. Records
// racing a Reset land wholly before or wholly after it only per field, so
// Reset is for quiescent moments (between campaign phases), not for
// consistent point-in-time reads — that is Snapshot.
func (h *Histogram) Reset() {
	for i := range h.shards {
		s := &h.shards[i]
		s.count.Store(0)
		s.sum.Store(0)
		s.max.Store(0)
		for j := range s.counts {
			s.counts[j].Store(0)
		}
	}
}

// Count returns the number of observations recorded so far.
func (h *Histogram) Count() int64 {
	var c int64
	for i := range h.shards {
		c += h.shards[i].count.Load()
	}
	return c
}

// Add folds every observation of o into h (bucket-wise, exact). o keeps
// its contents. Concurrent recording into either histogram during an Add
// may or may not be included; the result is still internally consistent
// per bucket.
func (h *Histogram) Add(o *Histogram) {
	if o == nil {
		return
	}
	dst := &h.shards[0]
	for i := range o.shards {
		s := &o.shards[i]
		for b := range s.counts {
			if n := s.counts[b].Load(); n != 0 {
				dst.counts[b].Add(n)
			}
		}
		dst.count.Add(s.count.Load())
		dst.sum.Add(s.sum.Load())
		m := s.max.Load()
		for {
			cur := dst.max.Load()
			if m <= cur || dst.max.CompareAndSwap(cur, m) {
				break
			}
		}
	}
}

// Snapshot freezes the current contents into a Snap.
func (h *Histogram) Snapshot() Snap {
	s := Snap{counts: make([]int64, nBuckets)}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			s.counts[b] += sh.counts[b].Load()
		}
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1) directly
// from the live histogram; shorthand for Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) int64 { return h.Snapshot().Quantile(q) }

// Snap is a frozen histogram: totals plus the per-bucket counts.
type Snap struct {
	Count int64
	Sum   int64
	Max   int64

	counts []int64
}

// Mean returns the arithmetic mean of the observations, 0 when empty.
func (s Snap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1): the upper
// bound of the bucket holding the ceil(q*Count)-th smallest observation,
// clamped to the recorded maximum. Returns 0 when empty.
func (s Snap) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.counts) == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for b, n := range s.counts {
		cum += n
		if cum >= rank {
			if u := bucketUpper(b); u < s.Max {
				return u
			}
			return s.Max
		}
	}
	return s.Max
}

// Merge returns the exact bucket-wise combination of s and o.
func (s Snap) Merge(o Snap) Snap {
	out := Snap{Count: s.Count + o.Count, Sum: s.Sum + o.Sum, Max: s.Max}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	out.counts = make([]int64, nBuckets)
	copy(out.counts, s.counts)
	for b, n := range o.counts {
		out.counts[b] += n
	}
	return out
}

// snapJSON is the exported wire shape of a Snap.
type snapJSON struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
}

// MarshalJSON renders the snapshot as its summary statistics.
func (s Snap) MarshalJSON() ([]byte, error) {
	return json.Marshal(snapJSON{
		Count: s.Count,
		Sum:   s.Sum,
		Mean:  s.Mean(),
		Max:   s.Max,
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
	})
}

// Registry is a concurrency-safe set of named histograms, created lazily
// on first use. Hot paths should call Get once and keep the pointer; the
// returned *Histogram records without touching the registry lock.
type Registry struct {
	mu sync.Mutex
	m  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*Histogram)}
}

// Reset clears every registered histogram in place. Names and histogram
// identities survive, so meters holding Get results keep working.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range r.m {
		h.Reset()
	}
}

// Get returns the histogram registered under name, creating it if absent.
func (r *Registry) Get(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.m[name]
	if !ok {
		h = New()
		r.m[name] = h
	}
	return h
}

// Observe records v into the named histogram. Convenience for cold paths;
// hot paths should cache Get's pointer.
func (r *Registry) Observe(name string, v int64) { r.Get(name).Record(v) }

// Names returns the registered names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.m))
	for k := range r.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot freezes every non-empty histogram. Empty histograms (created
// but never recorded into) are elided so exports stay noise-free.
func (r *Registry) Snapshot() map[string]Snap {
	r.mu.Lock()
	hs := make(map[string]*Histogram, len(r.m))
	for k, h := range r.m {
		hs[k] = h
	}
	r.mu.Unlock()
	out := make(map[string]Snap, len(hs))
	for k, h := range hs {
		if s := h.Snapshot(); s.Count > 0 {
			out[k] = s
		}
	}
	return out
}
