package hist

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"testing"
)

// lcg is a tiny deterministic generator so the reference distributions are
// reproducible without seeding global state.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func TestBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the value
	// and within the layout's relative-error guarantee.
	var g lcg = 42
	check := func(v int64) {
		t.Helper()
		b := bucketIndex(v)
		u := bucketUpper(b)
		if u < v {
			t.Fatalf("value %d: bucket %d upper %d < value", v, b, u)
		}
		if v >= 32 && float64(u-v) > float64(v)/float64(subCount)+1 {
			t.Fatalf("value %d: bucket %d upper %d overshoots by %d", v, b, u, u-v)
		}
		if b > 0 && bucketUpper(b-1) >= v {
			t.Fatalf("value %d: previous bucket %d upper %d already covers it", v, b-1, bucketUpper(b-1))
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	for i := 0; i < 10000; i++ {
		check(int64(g.next() >> 1))
	}
	if got := bucketIndex(math.MaxInt64); got >= nBuckets {
		t.Fatalf("MaxInt64 bucket %d out of range %d", got, nBuckets)
	}
}

// TestQuantileAccuracy checks quantile estimates against a sort-based
// reference over several distribution shapes: the estimate must bracket
// the true order statistic within one bucket width (~1/16 relative).
func TestQuantileAccuracy(t *testing.T) {
	var g lcg = 7
	shapes := map[string]func() int64{
		"uniform_1e6":  func() int64 { return int64(g.next() % 1_000_000) },
		"exponential":  func() int64 { return int64(1) << (g.next() % 30) },
		"small_counts": func() int64 { return int64(g.next() % 20) },
		"heavy_tail": func() int64 {
			v := int64(g.next() % 1000)
			if g.next()%100 == 0 {
				v *= 10_000
			}
			return v
		},
	}
	quantiles := []float64{0.50, 0.90, 0.99, 0.999}
	for name, draw := range shapes {
		t.Run(name, func(t *testing.T) {
			h := New()
			vals := make([]int64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := draw()
				vals = append(vals, v)
				h.Record(v)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			snap := h.Snapshot()
			if snap.Count != int64(len(vals)) {
				t.Fatalf("count %d, want %d", snap.Count, len(vals))
			}
			if snap.Max != vals[len(vals)-1] {
				t.Fatalf("max %d, want %d", snap.Max, vals[len(vals)-1])
			}
			for _, q := range quantiles {
				rank := int(math.Ceil(q*float64(len(vals)))) - 1
				exact := vals[rank]
				got := snap.Quantile(q)
				// The estimate is the bucket upper bound: never below the
				// true order statistic, and at most one bucket width above.
				if got < exact {
					t.Errorf("q=%v: estimate %d below exact %d", q, got, exact)
				}
				tol := float64(exact)/float64(subCount) + 1
				if float64(got-exact) > tol {
					t.Errorf("q=%v: estimate %d, exact %d, tolerance %v", q, got, exact, tol)
				}
			}
		})
	}
}

func TestMergeExact(t *testing.T) {
	a, b := New(), New()
	var g lcg = 3
	var sum int64
	for i := 0; i < 5000; i++ {
		v := int64(g.next() % 100000)
		sum += v
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := a.Snapshot().Merge(b.Snapshot())
	if merged.Count != 5000 || merged.Sum != sum {
		t.Fatalf("snap merge count=%d sum=%d, want 5000/%d", merged.Count, merged.Sum, sum)
	}
	a.Add(b)
	live := a.Snapshot()
	if live.Count != merged.Count || live.Sum != merged.Sum || live.Max != merged.Max {
		t.Fatalf("live Add disagrees with Snap.Merge: %+v vs %+v", live, merged)
	}
	for q := 1; q <= 100; q++ {
		p := float64(q) / 100
		if live.Quantile(p) != merged.Quantile(p) {
			t.Fatalf("q=%v: live %d, merged %d", p, live.Quantile(p), merged.Quantile(p))
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := New()
	const goroutines, per = 16, 2000
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			g := lcg(seed)
			for i := 0; i < per; i++ {
				h.Record(int64(g.next() % 1_000_000))
			}
		}(uint64(gi + 1))
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count %d, want %d", got, goroutines*per)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Observe("round_ns", 100)
	r.Observe("round_ns", 200)
	r.Get("never_recorded")
	if h := r.Get("round_ns"); h.Count() != 2 {
		t.Fatalf("count %d, want 2", h.Count())
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "never_recorded" || names[1] != "round_ns" {
		t.Fatalf("names %v", names)
	}
	snaps := r.Snapshot()
	if _, ok := snaps["never_recorded"]; ok {
		t.Fatalf("empty histogram not elided from snapshot")
	}
	if snaps["round_ns"].Count != 2 || snaps["round_ns"].Sum != 300 {
		t.Fatalf("round_ns snap %+v", snaps["round_ns"])
	}
	data, err := json.Marshal(snaps["round_ns"])
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]float64
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"count", "sum", "mean", "max", "p50", "p90", "p99", "p999"} {
		if _, ok := decoded[k]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", k, data)
		}
	}
	if decoded["p999"] != 200 {
		t.Fatalf("p999 %v, want 200 (clamped to max)", decoded["p999"])
	}
}
