package obs

import (
	"testing"
	"time"
)

// recorder appends hook names in call order.
type recorder struct {
	Base
	calls []string
}

func (r *recorder) RoundStart(int, int)              { r.calls = append(r.calls, "round") }
func (r *recorder) Decide(int, int)                  { r.calls = append(r.calls, "decide") }
func (r *recorder) Phase(int, string, time.Duration) { r.calls = append(r.calls, "phase") }

func TestMultiNilHandling(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	r := &recorder{}
	if got := Multi(nil, r, nil); got != Observer(r) {
		t.Fatal("Multi with one live observer should return it unwrapped")
	}
}

// TestMultiDropsTypedNils covers the typed-nil footgun: an unassigned
// *Metrics or *EventLog variable passed through the Observer interface is
// not == nil, but must still be dropped rather than dereferenced later.
func TestMultiDropsTypedNils(t *testing.T) {
	var m *Metrics
	var e *EventLog
	if got := Multi(m, e); got != nil {
		t.Fatalf("Multi(typed nil, typed nil) = %v, want nil", got)
	}
	r := &recorder{}
	combined := Multi(m, r, e)
	if combined != Observer(r) {
		t.Fatal("typed nils should be filtered, leaving the live observer unwrapped")
	}
	combined.RunStart(1) // must not panic
}

func TestMultiFansOut(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	m := Multi(a, nil, b)
	m.RunStart(3)
	m.RoundStart(1, 3)
	m.Emit(1, 0)
	m.Deliver(1, 0, 2, 1)
	m.Suspect(1, 0, []int{2})
	m.Crash(1, []int{2})
	m.Decide(1, 0)
	m.Phase(1, "plan", time.Nanosecond)
	m.Event("k", 1, 0, nil)
	m.RunEnd(1, 1, nil)
	want := []string{"round", "decide", "phase"}
	for _, rec := range []*recorder{a, b} {
		if len(rec.calls) != len(want) {
			t.Fatalf("calls = %v", rec.calls)
		}
		for i := range want {
			if rec.calls[i] != want[i] {
				t.Fatalf("calls = %v, want %v", rec.calls, want)
			}
		}
	}
}

func TestBaseIsObserver(t *testing.T) {
	var o Observer = Base{}
	// Every hook must be callable without panicking.
	o.RunStart(1)
	o.RoundStart(1, 1)
	o.Emit(1, 0)
	o.Deliver(1, 0, 1, 0)
	o.Suspect(1, 0, nil)
	o.Crash(1, nil)
	o.Decide(1, 0)
	o.Phase(1, "plan", 0)
	o.Event("k", -1, -1, nil)
	o.RunEnd(1, 1, nil)
}
