package obs_test

import (
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// TestMultiConcurrentStress hammers a Multi fan-out — Metrics + EventLog +
// Tracer — plus direct histogram recording from many goroutines at once.
// Run under -race (make telemetry-short, CI) it is the data-race canary
// for the whole observer stack; the count checks catch lost updates.
func TestMultiConcurrentStress(t *testing.T) {
	metrics := obs.NewMetrics()
	events := obs.NewEventLog(io.Discard)
	tracer := trace.New()
	multi := obs.Multi(metrics, events, tracer)
	reg := metrics.Hist()
	wall := reg.Get("stress_wall_ns")

	const goroutines = 8
	const runs = 25
	const n = 5

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			suspects := []int{n - 1}
			for run := 0; run < runs; run++ {
				multi.RunStart(n)
				for r := 1; r <= 3; r++ {
					multi.RoundStart(r, n)
					multi.Crash(r, nil)
					for p := 0; p < n; p++ {
						multi.Emit(r, p)
					}
					multi.Phase(r, "emit", time.Microsecond)
					for p := 0; p < n; p++ {
						multi.Suspect(r, p, suspects)
						multi.Deliver(r, p, n-1, 1)
						multi.Event("msgnet.send", r, p, map[string]any{"to": (p + 1) % n, "step": r})
					}
					multi.Phase(r, "deliver", time.Microsecond)
					multi.Phase(r, "round", 2*time.Microsecond)
				}
				multi.Decide(3, 0)
				multi.RunEnd(3, 1, nil)
				wall.Record(int64(g*runs + run + 1))
			}
		}(g)
	}
	wg.Wait()

	s := metrics.Snapshot()
	const total = goroutines * runs
	if s.Runs != total {
		t.Fatalf("runs = %d, want %d", s.Runs, total)
	}
	if want := int64(total * 3 * n); s.Emits != want {
		t.Fatalf("emits = %d, want %d", s.Emits, want)
	}
	if want := int64(total * 3 * n); s.SuspicionsTotal != want {
		t.Fatalf("suspicions = %d, want %d", s.SuspicionsTotal, want)
	}
	if got := s.SuspectedCounts[n-1]; got != int64(total*3*n) {
		t.Fatalf("suspected_counts[%d] = %d, want %d", n-1, got, total*3*n)
	}
	if want := int64(total * 3 * n); s.Events["msgnet.send"] != want {
		t.Fatalf("msgnet.send events = %d, want %d", s.Events["msgnet.send"], want)
	}
	if got := s.Hist["deliver_fanin"].Count; got != int64(total*3*n) {
		t.Fatalf("deliver_fanin count = %d, want %d", got, total*3*n)
	}
	if got := s.Hist["round_ns"].Count; got != int64(total*3) {
		t.Fatalf("round_ns count = %d, want %d", got, total*3)
	}
	if got := wall.Count(); got != total {
		t.Fatalf("stress_wall_ns count = %d, want %d", got, total)
	}
	if tracer.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	// The tracer must still be exportable after concurrent abuse.
	if _, err := tracer.Perfetto(); err != nil {
		t.Fatal(err)
	}
}
