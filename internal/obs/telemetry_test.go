package obs_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// feedMetrics drives one tiny observed execution so every exporter has
// something to show.
func feedMetrics(t *testing.T, m *obs.Metrics) {
	t.Helper()
	factory := func(me core.PID, n int, input core.Value) core.Algorithm {
		return decideAt2{input}
	}
	oracle := core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		plan := core.RoundPlan{Suspects: make([]core.Set, 3)}
		for i := range plan.Suspects {
			if r >= 2 {
				plan.Suspects[i] = core.SetOf(3, 2)
			} else {
				plan.Suspects[i] = core.SetOf(3)
			}
		}
		if r == 2 {
			plan.Crashes = core.SetOf(3, 2)
		}
		return plan
	})
	if _, err := core.Run(3, []core.Value{1, 2, 3}, factory, oracle,
		core.WithMaxRounds(4), core.WithObserver(m)); err != nil {
		t.Fatal(err)
	}
	m.Event("rlink.retransmit", -1, 0, map[string]any{"to": 1, "seq": 0, "attempt": 1, "interval": 8})
}

type decideAt2 struct{ v core.Value }

func (a decideAt2) Emit(r int) core.Message { return a.v }
func (a decideAt2) Deliver(r int, msgs map[core.PID]core.Message, suspects core.Set) (core.Value, bool) {
	return a.v, r >= 2
}

var (
	promSample  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9.eE+]+$`)
	promHelp    = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	promType    = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	promStrip   = regexp.MustCompile(`_(sum|count)$`)
	sampleIdent = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)
)

// validatePrometheus parses r as the Prometheus text exposition format:
// every line is a HELP/TYPE comment or a sample, and every sample's
// metric (modulo the summary's _sum/_count suffixes) was TYPE-declared
// first. Returns the sample names seen.
func validatePrometheus(t *testing.T, r io.Reader) map[string]bool {
	t.Helper()
	typed := map[string]bool{}
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case text == "":
		case strings.HasPrefix(text, "# HELP "):
			if !promHelp.MatchString(text) {
				t.Fatalf("line %d: malformed HELP: %q", line, text)
			}
		case strings.HasPrefix(text, "# TYPE "):
			m := promType.FindStringSubmatch(text)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", line, text)
			}
			typed[m[1]] = true
		case strings.HasPrefix(text, "#"):
			t.Fatalf("line %d: unexpected comment form: %q", line, text)
		default:
			if !promSample.MatchString(text) {
				t.Fatalf("line %d: malformed sample: %q", line, text)
			}
			name := sampleIdent.FindString(text)
			base := promStrip.ReplaceAllString(name, "")
			if !typed[name] && !typed[base] {
				t.Fatalf("line %d: sample %q without preceding TYPE", line, name)
			}
			seen[name] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return seen
}

func TestWritePrometheus(t *testing.T) {
	tel := obs.NewTelemetry()
	feedMetrics(t, tel.Metrics)
	var b strings.Builder
	obs.WritePrometheus(&b, tel.Metrics.Snapshot())
	seen := validatePrometheus(t, strings.NewReader(b.String()))
	for _, want := range []string{
		"rrfd_runs_total", "rrfd_rounds_total", "rrfd_suspicions_total",
		"rrfd_phase_ns_total", "rrfd_events_total",
		"rrfd_deliver_fanin", "rrfd_deliver_fanin_sum", "rrfd_deliver_fanin_count",
		"rrfd_round_ns", "rrfd_rlink_backoff_steps",
	} {
		if !seen[want] {
			t.Fatalf("exposition lacks %s:\n%s", want, b.String())
		}
	}
}

func TestServeTelemetry(t *testing.T) {
	tel := obs.NewTelemetry()
	feedMetrics(t, tel.Metrics)
	srv, err := obs.ServeTelemetry("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := client.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s\n%s", path, resp.Status, body)
		}
		return resp, body
	}

	resp, body := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	validatePrometheus(t, strings.NewReader(string(body)))

	_, body = get("/snapshot")
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/snapshot not a Snapshot: %v\n%s", err, body)
	}
	if snap.Runs != 1 || snap.Rounds != 2 {
		t.Fatalf("snapshot runs=%d rounds=%d, want 1/2", snap.Runs, snap.Rounds)
	}
	if len(snap.SuspectedCounts) == 0 {
		t.Fatal("snapshot dropped suspected_counts")
	}

	_, body = get("/debug/pprof/cmdline")
	if len(body) == 0 {
		t.Fatal("empty pprof cmdline")
	}

	// A second bind on the same port must fail synchronously — the
	// listen-error contract that replaced the bare goroutine listeners.
	if dup, err := obs.ServeTelemetry(srv.Addr(), tel); err == nil {
		dup.Close()
		t.Fatal("duplicate bind unexpectedly succeeded")
	}
}

// TestSuspectRecorded pins the Suspect fix: member identities land in the
// snapshot (process 2 is the only suspect in feedMetrics' run).
func TestSuspectRecorded(t *testing.T) {
	m := obs.NewMetrics()
	feedMetrics(t, m)
	s := m.Snapshot()
	if len(s.SuspectedCounts) != 1 || s.SuspectedCounts[2] == 0 {
		t.Fatalf("suspected_counts = %v, want only process 2", s.SuspectedCounts)
	}
	if s.SuspectedCounts[2] != s.SuspicionsTotal {
		t.Fatalf("suspected_counts[2] = %d, suspicions_total = %d: identity and cardinality accounting disagree",
			s.SuspectedCounts[2], s.SuspicionsTotal)
	}
	// The round-duration and fan-in histograms must have fired too.
	if s.Hist["round_ns"].Count == 0 || s.Hist["deliver_fanin"].Count == 0 {
		t.Fatalf("hist snapshots missing engine distributions: %v", s.Hist)
	}
}
