package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders a Snapshot in the Prometheus text exposition
// format (version 0.0.4): the scalar counters, the per-kind event and
// per-phase time totals as labelled counters, and every histogram as a
// summary with p50/p90/p99/p999 quantiles. Output order is deterministic
// (sorted names) so scrapes diff cleanly.
func WritePrometheus(w io.Writer, s Snapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("rrfd_runs_total", "Engine executions observed.", s.Runs)
	counter("rrfd_run_errors_total", "Engine executions that ended in error.", s.RunErrors)
	counter("rrfd_rounds_total", "Rounds executed across runs.", s.Rounds)
	counter("rrfd_emits_total", "Round messages emitted.", s.Emits)
	counter("rrfd_messages_delivered_total", "Messages delivered (sum of |S(i,r)|).", s.MessagesDelivered)
	counter("rrfd_suspicions_total", "Suspicions issued (sum of |D(i,r)|).", s.SuspicionsTotal)
	counter("rrfd_crashes_total", "Processes crashed by the adversary.", s.Crashes)
	counter("rrfd_decisions_total", "First decisions.", s.Decisions)

	if len(s.PhaseNanos) > 0 {
		fmt.Fprintf(w, "# HELP rrfd_phase_ns_total Cumulative wall time per engine phase, nanoseconds.\n# TYPE rrfd_phase_ns_total counter\n")
		for _, phase := range sortedKeys(s.PhaseNanos) {
			fmt.Fprintf(w, "rrfd_phase_ns_total{phase=%q} %d\n", phase, s.PhaseNanos[phase])
		}
	}
	if len(s.Events) > 0 {
		fmt.Fprintf(w, "# HELP rrfd_events_total Protocol events by kind.\n# TYPE rrfd_events_total counter\n")
		for _, kind := range sortedKeys(s.Events) {
			fmt.Fprintf(w, "rrfd_events_total{kind=%q} %d\n", kind, s.Events[kind])
		}
	}

	histNames := make([]string, 0, len(s.Hist))
	for name := range s.Hist {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Hist[name]
		metric := "rrfd_" + sanitizeMetricName(name)
		fmt.Fprintf(w, "# HELP %s Distribution of %s.\n# TYPE %s summary\n", metric, name, metric)
		for _, q := range []struct {
			label string
			p     float64
		}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999}} {
			fmt.Fprintf(w, "%s{quantile=\"%s\"} %d\n", metric, q.label, h.Quantile(q.p))
		}
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", metric, h.Sum, metric, h.Count)
	}
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sanitizeMetricName maps a histogram name onto the metric-name alphabet
// [a-zA-Z0-9_:], replacing anything else with '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
