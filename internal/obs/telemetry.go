package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/obs/hist"
)

// Telemetry bundles the process-wide measurement state — a Metrics
// observer and its histogram registry — behind one handle that exporters,
// CLIs and campaign drivers share. Attach Metrics wherever an Observer
// goes, hand Hist to whatever meters outside the observer hooks (chaos
// per-run wall time, par task latency), and serve both with
// ServeTelemetry.
type Telemetry struct {
	// Metrics aggregates observer hooks; attach it via core.WithObserver,
	// Multi, or SetDefaultObserver.
	Metrics *Metrics

	// Hist is Metrics.Hist(): the shared registry of latency/size
	// histograms. Non-observer instrumentation records here directly.
	Hist *hist.Registry
}

// NewTelemetry returns a fresh Telemetry around an empty Metrics.
func NewTelemetry() *Telemetry {
	m := NewMetrics()
	return &Telemetry{Metrics: m, Hist: m.Hist()}
}

// TelemetryServer is a live telemetry endpoint started by ServeTelemetry.
type TelemetryServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeTelemetry binds addr and serves the telemetry endpoints in a
// background goroutine:
//
//	/metrics        Prometheus text exposition (counters + quantiles)
//	/snapshot       the full Metrics Snapshot as indented JSON
//	/debug/pprof/   the standard net/http/pprof profiles
//
// Unlike a bare `go http.ListenAndServe`, the bind happens synchronously:
// a bad or occupied address is reported here, not logged from a goroutine
// after the caller moved on. Close shuts the listener down.
func ServeTelemetry(addr string, t *Telemetry) (*TelemetryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, t.Metrics.Snapshot())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		data, err := t.Metrics.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	return &TelemetryServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address ("127.0.0.1:43123"), useful with ":0".
func (s *TelemetryServer) Addr() string { return s.ln.Addr().String() }

// Close stops serving and releases the listener.
func (s *TelemetryServer) Close() error { return s.srv.Close() }
