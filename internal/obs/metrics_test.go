package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsAggregates(t *testing.T) {
	m := NewMetrics()
	m.RunStart(4)
	m.RoundStart(1, 4)
	for p := 0; p < 4; p++ {
		m.Emit(1, p)
	}
	m.Deliver(1, 0, 3, 1)
	m.Deliver(1, 1, 4, 0)
	m.Deliver(1, 2, 3, 1)
	m.Deliver(1, 3, 3, 1)
	m.Crash(1, []int{3})
	m.Decide(1, 0)
	m.Decide(1, 1)
	m.Phase(1, "plan", 100*time.Nanosecond)
	m.Phase(1, "plan", 300*time.Nanosecond)
	m.Event("agreement.kset_choose", 1, 0, nil)
	m.RunEnd(1, 2, nil)

	s := m.Snapshot()
	if s.Runs != 1 || s.Rounds != 1 || s.Emits != 4 {
		t.Fatalf("runs/rounds/emits: %+v", s)
	}
	if s.MessagesDelivered != 13 || s.SuspicionsTotal != 3 {
		t.Fatalf("delivered=%d suspicions=%d", s.MessagesDelivered, s.SuspicionsTotal)
	}
	if s.Crashes != 1 || s.Decisions != 2 || s.RunErrors != 0 {
		t.Fatalf("crashes/decisions/errors: %+v", s)
	}
	if s.RoundsToDecision[1] != 2 {
		t.Fatalf("rounds_to_decision: %v", s.RoundsToDecision)
	}
	if s.DSetSizeHist[1] != 3 || s.DSetSizeHist[0] != 1 {
		t.Fatalf("dset_size_hist: %v", s.DSetSizeHist)
	}
	if s.SuspicionsPerRound[1] != 3 {
		t.Fatalf("suspicions_per_round: %v", s.SuspicionsPerRound)
	}
	if s.PhaseNanos["plan"] != 400 || s.PhaseMeanNanos["plan"] != 200 {
		t.Fatalf("phase plan: %v %v", s.PhaseNanos, s.PhaseMeanNanos)
	}
	if s.OraclePlanMeanNanos != 200 {
		t.Fatalf("oracle plan mean: %v", s.OraclePlanMeanNanos)
	}
	if s.Events["agreement.kset_choose"] != 1 {
		t.Fatalf("events: %v", s.Events)
	}

	m.RunEnd(1, 0, errors.New("boom"))
	if got := m.Snapshot().RunErrors; got != 1 {
		t.Fatalf("run_errors = %d", got)
	}

	m.Reset()
	if s := m.Snapshot(); s.Runs != 0 || s.SuspicionsTotal != 0 || len(s.DSetSizeHist) != 0 {
		t.Fatalf("reset left state: %+v", s)
	}
}

func TestMetricsSnapshotJSON(t *testing.T) {
	m := NewMetrics()
	m.RunStart(3)
	m.RoundStart(1, 3)
	m.Deliver(1, 0, 2, 1)
	m.Decide(2, 0)
	b, err := m.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, b)
	}
	for _, key := range []string{"runs", "rounds", "suspicions_total", "rounds_to_decision", "dset_size_hist", "suspicions_per_round", "phase_ns"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("snapshot JSON missing %q:\n%s", key, b)
		}
	}
}

// TestMetricsConcurrent hammers every hook from many goroutines; run with
// -race this is the data-race check for the whole Metrics implementation.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.RunStart(4)
				m.RoundStart(i, 4)
				m.Emit(i, w)
				m.Deliver(i, w, 3, 1)
				m.Suspect(i, w, []int{0})
				m.Crash(i, []int{1, 2})
				m.Decide(i, w)
				m.Phase(i, "plan", time.Nanosecond)
				m.Event("k", i, w, nil)
				m.RunEnd(i, 1, nil)
				if i%50 == 0 {
					_ = m.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := m.Snapshot()
	total := int64(workers * iters)
	if s.Runs != total || s.Emits != total || s.Decisions != total {
		t.Fatalf("lost updates: runs=%d emits=%d decisions=%d want %d", s.Runs, s.Emits, s.Decisions, total)
	}
	if s.SuspicionsTotal != total || s.Crashes != 2*total || s.Events["k"] != total {
		t.Fatalf("lost updates: suspicions=%d crashes=%d events=%d", s.SuspicionsTotal, s.Crashes, s.Events["k"])
	}
}

// TestMetricsFaultCounters checks that faultnet.* and rlink.* events feed
// the FaultSnapshot, split by cause, and that fault-free snapshots omit it.
func TestMetricsFaultCounters(t *testing.T) {
	m := NewMetrics()
	if m.Snapshot().Faults != nil {
		t.Fatal("fault-free snapshot should omit Faults")
	}
	m.Event("faultnet.drop", -1, 0, map[string]any{"reason": "drop"})
	m.Event("faultnet.drop", -1, 0, map[string]any{"reason": "drop"})
	m.Event("faultnet.drop", -1, 1, map[string]any{"reason": "omission"})
	m.Event("faultnet.drop", -1, 2, map[string]any{"reason": "partition"})
	m.Event("faultnet.dup", -1, 0, nil)
	m.Event("faultnet.delay", -1, 0, nil)
	m.Event("faultnet.partition_span", -1, -1, nil)
	m.Event("rlink.retransmit", -1, 0, nil)
	m.Event("rlink.retransmit", -1, 0, nil)
	m.Event("rlink.retransmit", -1, 0, nil)
	m.Event("rlink.dup_rx", -1, 1, nil)
	m.Event("rlink.giveup", -1, 0, nil)
	m.Event("rlink.watchdog", -1, 2, nil)

	f := m.Snapshot().Faults
	if f == nil {
		t.Fatal("Faults missing from snapshot")
	}
	want := FaultSnapshot{
		Drops: 2, Omissions: 1, PartitionDrops: 1,
		PartitionSpans: 1, Duplicates: 1, Delays: 1,
		Retransmissions: 3, DupFramesReceived: 1, GiveUps: 1,
		WatchdogStalls: 1,
	}
	if *f != want {
		t.Fatalf("faults = %+v, want %+v", *f, want)
	}

	b, err := m.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"faults"`) || !strings.Contains(string(b), `"retransmissions": 3`) {
		t.Fatalf("JSON lacks fault counters:\n%s", b)
	}

	m.Reset()
	if m.Snapshot().Faults != nil {
		t.Fatal("Reset did not clear fault counters")
	}
}

func TestMetricsRecoveryCounters(t *testing.T) {
	m := NewMetrics()
	if m.Snapshot().Recovery != nil {
		t.Fatal("recovery-free snapshot should omit Recovery")
	}
	m.Event("msgnet.restart", -1, 0, map[string]any{"step": 42, "incarnation": 2})
	m.Event("recovery.recover", 2, 0, map[string]any{"replayed_rounds": 2, "lost_records": 3, "resume_round": 3})
	m.Event("recovery.rejoin", 5, 0, map[string]any{"round": 5})
	m.Event("recovery.checkpoint", 1, -1, map[string]any{"bytes": 128, "nanos": int64(5000)})
	m.Event("recovery.checkpoint", 2, -1, map[string]any{"bytes": 130, "nanos": int64(7000)})
	m.Event("recovery.resume", 3, -1, map[string]any{"replayed_rounds": 3, "truncated_bytes": int64(17), "from_snapshot": 2})

	r := m.Snapshot().Recovery
	if r == nil {
		t.Fatal("Recovery missing from snapshot")
	}
	want := RecoverySnapshot{
		Restarts: 1, Recoveries: 1, Rejoins: 1,
		ReplayedRounds: 2, LostRecords: 3,
		Checkpoints: 2, CheckpointBytes: 258, CheckpointNanos: 12000,
		Resumes: 1, SnapshotResumes: 1, ResumeReplayedRounds: 3, TruncatedBytes: 17,
	}
	if *r != want {
		t.Fatalf("recovery = %+v, want %+v", *r, want)
	}

	b, err := m.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"recovery"`) || !strings.Contains(string(b), `"checkpoint_bytes": 258`) {
		t.Fatalf("JSON lacks recovery counters:\n%s", b)
	}

	m.Reset()
	if m.Snapshot().Recovery != nil {
		t.Fatal("Reset did not clear recovery counters")
	}
}

// TestMetricsMCCounters checks that mc.* events feed the MCSnapshot and
// that exploration-free snapshots omit it.
func TestMetricsMCCounters(t *testing.T) {
	m := NewMetrics()
	if m.Snapshot().MC != nil {
		t.Fatal("mc-free snapshot should omit MC")
	}
	m.Event("mc.schedule", -1, -1, map[string]any{"depth": 3})
	m.Event("mc.schedule", -1, -1, map[string]any{"depth": 4})
	m.Event("mc.sample", -1, -1, map[string]any{"depth": 4})
	m.Event("mc.prune", -1, -1, map[string]any{"depth": 2})
	m.Event("mc.violation", -1, -1, map[string]any{"choices": "c1:4", "len": 1})
	m.Event("mc.done", -1, -1, map[string]any{
		"schedules": 2, "pruned": 1, "sampled": 1,
		"max_depth": 4, "symmetry_skips": 5, "sleep_skips": 6,
	})

	mc := m.Snapshot().MC
	if mc == nil {
		t.Fatal("MC missing from snapshot")
	}
	want := MCSnapshot{
		Explorations: 1, Schedules: 2, Sampled: 1, Pruned: 1,
		SymmetrySkips: 5, SleepSkips: 6, Violations: 1, MaxDepth: 4,
	}
	if *mc != want {
		t.Fatalf("mc = %+v, want %+v", *mc, want)
	}

	b, err := m.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"mc"`) || !strings.Contains(string(b), `"schedules": 2`) {
		t.Fatalf("JSON lacks mc counters:\n%s", b)
	}

	m.Reset()
	if m.Snapshot().MC != nil {
		t.Fatal("Reset did not clear mc counters")
	}
}

// TestMetricsNetCounters checks that netsub.* and sockchaos.* events feed
// the NetSnapshot, that netsub.watchdog counts as a watchdog stall, and
// that network-free snapshots omit the block.
func TestMetricsNetCounters(t *testing.T) {
	m := NewMetrics()
	if m.Snapshot().Net != nil {
		t.Fatal("network-free snapshot should omit Net")
	}
	m.Event("netsub.conn_open", -1, 0, map[string]any{"peer": 1, "dir": "out"})
	m.Event("netsub.conn_open", -1, 1, map[string]any{"peer": 0, "dir": "in"})
	m.Event("netsub.conn_close", -1, 0, map[string]any{"peer": 1, "dir": "out", "reason": "eof"})
	m.Event("netsub.dial_fail", -1, 0, map[string]any{"peer": 1, "err": "refused"})
	m.Event("netsub.dial_fail", -1, 0, map[string]any{"peer": 1, "err": "refused"})
	m.Event("netsub.reconnect", -1, 0, map[string]any{"peer": 1})
	m.Event("netsub.hello", -1, 1, map[string]any{"peer": 0, "incarnation": 1})
	m.Event("netsub.backpressure", -1, 0, map[string]any{"peer": 1, "cap": 64})
	m.Event("netsub.evict", -1, 0, map[string]any{"peer": 2, "strikes": 4})
	m.Event("netsub.frame_error", -1, 1, map[string]any{"reason": "bad hello"})
	m.Event("netsub.watchdog", 3, 0, map[string]any{"missing": 2})
	m.Event("sockchaos.drop", -1, -1, map[string]any{"from": 0, "frame": 7})
	m.Event("sockchaos.delay", -1, -1, nil)
	m.Event("sockchaos.duplicate", -1, -1, nil)
	m.Event("sockchaos.reset", -1, -1, nil)

	s := m.Snapshot()
	if s.Net == nil {
		t.Fatal("Net missing from snapshot")
	}
	want := NetSnapshot{
		ConnsOpened: 2, ConnsClosed: 1, DialFailures: 2, Reconnects: 1,
		Hellos: 1, Backpressure: 1, Evictions: 1, FrameErrors: 1,
		SockDrops: 1, SockDelays: 1, SockDuplicates: 1, SockResets: 1,
	}
	if *s.Net != want {
		t.Fatalf("net = %+v, want %+v", *s.Net, want)
	}
	if s.Faults == nil || s.Faults.WatchdogStalls != 1 {
		t.Fatalf("netsub.watchdog should count as a watchdog stall: %+v", s.Faults)
	}

	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"net"`) || !strings.Contains(string(b), `"dial_failures": 2`) {
		t.Fatalf("JSON lacks net counters:\n%s", b)
	}

	m.Reset()
	if m.Snapshot().Net != nil {
		t.Fatal("Reset did not clear net counters")
	}
}

func TestMetricsServeCounters(t *testing.T) {
	m := NewMetrics()
	if m.Snapshot().Serve != nil {
		t.Fatal("service-free snapshot should omit Serve")
	}
	m.Event("serve.decide", -1, 0, map[string]any{"gathered": 2})
	m.Event("serve.decide", -1, 1, map[string]any{"gathered": 2})
	m.Event("serve.adopt", -1, 2, nil)
	m.Event("serve.dup", -1, 0, nil)
	m.Event("serve.dup", -1, 0, nil)
	m.Event("serve.shed", -1, 0, map[string]any{"inflight": 64})
	m.Event("serve.shed", -1, 1, map[string]any{"inflight": 64, "peer": true})
	m.Event("serve.abstain", -1, 0, map[string]any{"gathered": 1, "need": 2})
	m.Event("serve.evict_instance", -1, 0, map[string]any{"gathered": 1})
	m.Event("serve.recover", -1, 2, map[string]any{"incarnation": 2, "decisions": 5, "proposals": 7})
	m.Event("serve.crash", -1, 2, map[string]any{"acked": 3})
	m.Event("serve.bad_peer_msg", -1, 1, map[string]any{"err": "short frame"})

	s := m.Snapshot()
	if s.Serve == nil {
		t.Fatal("Serve missing from snapshot")
	}
	want := ServeSnapshot{
		Decisions: 3, Adoptions: 1, IdempotentReplays: 2,
		Sheds: 2, PeerSheds: 1, Abstains: 1, InstanceEvictions: 1,
		Recoveries: 1, RecoveredDecisions: 5, Crashes: 1, BadPeerMsgs: 1,
	}
	if *s.Serve != want {
		t.Fatalf("serve = %+v, want %+v", *s.Serve, want)
	}

	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"serve"`) || !strings.Contains(string(b), `"recovered_decisions": 5`) {
		t.Fatalf("JSON lacks serve counters:\n%s", b)
	}

	m.Reset()
	if m.Snapshot().Serve != nil {
		t.Fatal("Reset did not clear serve counters")
	}
}
