package recovery

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/predicate"
)

// AuditError reports the first safety violation the post-hoc audit finds in
// a crash-and-recover execution.
type AuditError struct {
	// Kind names the violated property: "trace", "budget", "validity",
	// "k-agreement", or "durability".
	Kind string

	// Proc is the offending process, or -1 when the property is global.
	Proc core.PID

	// Detail is a human-readable account.
	Detail string
}

func (e *AuditError) Error() string {
	if e.Proc >= 0 {
		return fmt.Sprintf("recovery audit: %s violation at p%d: %s", e.Kind, e.Proc, e.Detail)
	}
	return fmt.Sprintf("recovery audit: %s violation: %s", e.Kind, e.Detail)
}

// Audit checks a finished crash-and-recover run against the model:
//
//  1. trace — the induced trace satisfies the structural RRFD invariants
//     S(i,r) ∪ D(i,r) = S and D(i,r) ≠ S;
//  2. budget — every completed round respects the eq. (3) per-round budget
//     |D(i,r)| ≤ f;
//  3. validity — every decision is one of the proposals;
//  4. k-agreement — at most f+1 distinct decisions (the one-round quorum
//     rule's bound, which recovery must not loosen);
//  5. durability — crash-recovery's log-before-act rule: every decision is
//     justified by a durable final-round quorum view in the decider's
//     journal, and equals the min of that view. A process that decides from
//     state a crash destroyed — the planted amnesia bug — fails here even on
//     schedules where the stale value happens to agree with everyone else.
func Audit(out *Outcome, n, f, rounds int) error {
	if err := out.Trace.Validate(); err != nil {
		return &AuditError{Kind: "trace", Proc: -1, Detail: err.Error()}
	}
	budget := predicate.PerRoundBudget(f)
	if err := budget.Check(out.Trace); err != nil {
		return &AuditError{Kind: "budget", Proc: -1, Detail: err.Error()}
	}

	valid := make(map[int]bool, n)
	for _, p := range out.Proposals {
		valid[p] = true
	}
	distinct := make(map[int]bool)
	for p, d := range out.Decisions {
		if !valid[d] {
			return &AuditError{Kind: "validity", Proc: p,
				Detail: fmt.Sprintf("decided %d, not a proposal", d)}
		}
		distinct[d] = true
	}
	if len(distinct) > f+1 {
		return &AuditError{Kind: "k-agreement", Proc: -1,
			Detail: fmt.Sprintf("%d distinct decisions %v exceed k=f+1=%d", len(distinct), keys(distinct), f+1)}
	}

	for p, d := range out.Decisions {
		st, err := out.Journals[p].Recover()
		if err != nil {
			return &AuditError{Kind: "durability", Proc: p,
				Detail: fmt.Sprintf("journal unreadable: %v", err)}
		}
		switch {
		case st.LastViewRound != rounds:
			return &AuditError{Kind: "durability", Proc: p,
				Detail: fmt.Sprintf("decided %d but the durable view is for round %d, not the final round %d", d, st.LastViewRound, rounds)}
		case len(st.LastView) < n-f:
			return &AuditError{Kind: "durability", Proc: p,
				Detail: fmt.Sprintf("decided %d from a durable view of %d < n-f = %d messages", d, len(st.LastView), n-f)}
		case minOf(st.LastView) != d:
			return &AuditError{Kind: "durability", Proc: p,
				Detail: fmt.Sprintf("decided %d but the durable final view justifies %d", d, minOf(st.LastView))}
		}
	}
	return nil
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
