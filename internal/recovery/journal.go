// Package recovery is the crash-recovery substrate: a supervised round
// protocol over msgnet in which a crashed process is restarted from its
// durable journal and re-joins the round structure through suspicion, as
// the crash-recovery failure model (Aguilera–Chen–Toueg, cf. PAPERS.md)
// prescribes.
//
// The package splits into two halves:
//
//   - Journal — per-process durable round state. The write discipline is
//     the classic one: the round-r emit record is flushed BEFORE the
//     round-r broadcast, so a recovered process never re-emits a round
//     with a different value than the one the network may already have
//     seen (no equivocation). View records may lag durability by
//     Config.FlushEvery rounds — that window is the amnesia risk, and an
//     honest recovery must treat it as lost.
//
//   - RunRounds — the n−f round protocol of msgnet.RunRounds extended
//     with journaling, supervised restart (msgnet.Config.Restart), and
//     catch-up: a recovered process resumes after its last durable round,
//     and every round it cannot complete (peers have moved on) it appears
//     in the peers' D sets — re-entry via suspicion, never via silent
//     equivocation. Completed rounds always carry an n−f quorum view, so
//     the induced trace satisfies S(i,r) ∪ D(i,r) = S and the eq. (3)
//     per-round budget |D(i,r)| ≤ f by construction; the tests verify
//     both on every recovered run.
package recovery

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/wal"
)

// State is what a journal yields at recovery: the last journaled round,
// the estimate as of that round, and the last completed view.
type State struct {
	// Round is the highest round with a journal record (0 = empty journal).
	Round int

	// Est is the estimate of the latest emit record; HasEst reports whether
	// one exists.
	Est    int
	HasEst bool

	// LastView and LastViewRound are the view record of the highest
	// journaled completed round (nil/0 if none).
	LastView      map[core.PID]int
	LastViewRound int

	// Entries counts journal records contributing to this state.
	Entries int
}

// Journal is one process's durable round log with two durability classes:
// emit records are write-through (durable when LogEmit returns — they sit on
// the no-equivocation critical path, so they must hit stable storage before
// the broadcast), while view records buffer until Flush (they are bulk state
// batched for throughput — and they are the amnesia window). Implementations
// are used by one process incarnation at a time and need not be
// concurrency-safe.
type Journal interface {
	// LogEmit durably records the round-r estimate about to be broadcast.
	LogEmit(r, est int) error

	// LogView records round r's completed quorum view and suspect set; it
	// may remain volatile until the next Flush.
	LogView(r int, view map[core.PID]int, d core.Set) error

	// Flush makes every buffered view record durable.
	Flush() error

	// Crash models the process's crash: whatever was not flushed is lost.
	Crash() error

	// Recover returns the durable state — what an honest restart sees.
	Recover() (State, error)

	// Unflushed returns the state including the un-flushed tail: the state
	// a crash destroyed. Honest recoveries must not use it; the planted
	// amnesia bug does, and the chaos harness proves that gets caught.
	Unflushed() (State, error)
}

// entry is one journal record.
type entry struct {
	Round int              `json:"r"`
	Emit  bool             `json:"emit"`
	Est   int              `json:"est,omitempty"`
	View  map[core.PID]int `json:"view,omitempty"`
	D     core.Set         `json:"d,omitempty"`
}

func stateOf(entries []entry) State {
	st := State{Entries: len(entries)}
	for _, e := range entries {
		if e.Round > st.Round {
			st.Round = e.Round
		}
		if e.Emit {
			st.Est, st.HasEst = e.Est, true
		} else if e.Round >= st.LastViewRound {
			st.LastView, st.LastViewRound = e.View, e.Round
		}
	}
	return st
}

// MemJournal is an in-memory Journal with an explicit durable/volatile
// split: Flush moves the volatile tail to the durable half, Crash discards
// it — the in-process model of a power loss destroying the page cache.
type MemJournal struct {
	durable  []entry
	volatile []entry

	// Lost counts entries discarded by Crash, for observability.
	Lost int
}

// NewMemJournal returns an empty in-memory journal.
func NewMemJournal() *MemJournal { return &MemJournal{} }

// LogEmit implements Journal: emit records are write-through durable.
func (j *MemJournal) LogEmit(r, est int) error {
	j.durable = append(j.durable, entry{Round: r, Emit: true, Est: est})
	return nil
}

// LogView implements Journal.
func (j *MemJournal) LogView(r int, view map[core.PID]int, d core.Set) error {
	cp := make(map[core.PID]int, len(view))
	for p, v := range view {
		cp[p] = v
	}
	j.volatile = append(j.volatile, entry{Round: r, View: cp, D: d.Clone()})
	return nil
}

// Flush implements Journal.
func (j *MemJournal) Flush() error {
	j.durable = append(j.durable, j.volatile...)
	j.volatile = nil
	return nil
}

// Crash implements Journal.
func (j *MemJournal) Crash() error {
	j.Lost += len(j.volatile)
	j.volatile = nil
	return nil
}

// Recover implements Journal.
func (j *MemJournal) Recover() (State, error) {
	return stateOf(j.durable), nil
}

// Unflushed implements Journal.
func (j *MemJournal) Unflushed() (State, error) {
	all := append(append([]entry(nil), j.durable...), j.volatile...)
	return stateOf(all), nil
}

var _ Journal = (*MemJournal)(nil)

// DiskJournal is a Journal over an internal/wal log. Records are flushed
// through the WAL's fsync policy; Crash closes and reopens the log, which
// drops at most a torn tail — the disk analogue of a process kill. Under
// wal.SyncAlways there is no amnesia window at all, which is the point of
// having a disk journal.
type DiskJournal struct {
	log *wal.Log
	dir string
}

// OpenDiskJournal opens (or creates) a WAL-backed journal in dir.
func OpenDiskJournal(dir string) (*DiskJournal, error) {
	l, _, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		return nil, err
	}
	return &DiskJournal{log: l, dir: dir}, nil
}

func (j *DiskJournal) append(e entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = j.log.Append(1, b)
	return err
}

// LogEmit implements Journal.
func (j *DiskJournal) LogEmit(r, est int) error {
	return j.append(entry{Round: r, Emit: true, Est: est})
}

// LogView implements Journal.
func (j *DiskJournal) LogView(r int, view map[core.PID]int, d core.Set) error {
	return j.append(entry{Round: r, View: view, D: d})
}

// Flush implements Journal.
func (j *DiskJournal) Flush() error { return j.log.Sync() }

// Crash implements Journal.
func (j *DiskJournal) Crash() error {
	if err := j.log.Close(); err != nil {
		return err
	}
	l, _, _, err := wal.Open(j.dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		return err
	}
	j.log = l
	return nil
}

// Recover implements Journal.
func (j *DiskJournal) Recover() (State, error) {
	recs, _, err := wal.Replay(j.dir)
	if err != nil {
		return State{}, err
	}
	entries := make([]entry, 0, len(recs))
	for _, rec := range recs {
		var e entry
		if err := json.Unmarshal(rec.Payload, &e); err != nil {
			return State{}, fmt.Errorf("recovery: decode journal record %d: %w", rec.Seq, err)
		}
		entries = append(entries, e)
	}
	return stateOf(entries), nil
}

// Unflushed implements Journal. A disk journal has no volatile half beyond
// the torn tail, so it coincides with Recover.
func (j *DiskJournal) Unflushed() (State, error) { return j.Recover() }

// Close closes the underlying log.
func (j *DiskJournal) Close() error { return j.log.Close() }

var _ Journal = (*DiskJournal)(nil)
