package recovery

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/msgnet"
	"repro/internal/obs"
)

// Config parameterises a supervised crash-and-recover execution.
type Config struct {
	// Net is the underlying scheduler configuration. Crash/Restart entries
	// are the supervisor: a crashed process with a Restart entry is respawned
	// that many steps later and takes the recovery path.
	Net msgnet.Config

	// Journals supplies one Journal per process; nil means fresh MemJournals.
	Journals []Journal

	// FlushEvery flushes buffered view records every k completed rounds
	// (0 means 1 — flush after every round, no amnesia window). The view of
	// the final round is always flushed before a decision, whatever k is.
	FlushEvery int

	// WatchdogSteps is the per-round receive deadline: a process that cannot
	// assemble an n−f view within this many virtual steps gives the round up
	// and skips forward. 0 means 2048.
	WatchdogSteps int

	// Proposals supplies the initial estimates; nil means proposal i = i.
	Proposals []int

	// AmnesiaBug plants the recovery bug this harness exists to catch: a
	// recovered process trusts its un-flushed journal tail (state the crash
	// destroyed) and decides from its last pre-crash view instead of
	// abstaining. Audit flags every decision it produces.
	AmnesiaBug bool
}

// Outcome reports a supervised crash-and-recover execution.
type Outcome struct {
	// Trace is the induced RRFD trace: Active at round r is the set of
	// processes that completed r with a quorum view. It satisfies the
	// structural invariants (core.Trace.Validate) but, unlike fail-stop
	// traces, Active may re-grow when a process rejoins.
	Trace *core.Trace

	// Decisions maps each decided process to its decision. Honest processes
	// decide min of their final-round quorum view; abstainers are absent.
	Decisions map[core.PID]int

	// Crashed and Restarted mirror msgnet.Outcome; Rejoined is the subset of
	// restarted processes that completed at least one round after recovery.
	Crashed, Restarted, Rejoined core.Set

	// Replayed[p] is the number of journaled rounds process p restored at
	// recovery; Lost[p] is the number of journal records its crash destroyed.
	Replayed, Lost map[core.PID]int

	// Journals are the per-process journals after the run, for audit.
	Journals []Journal

	// Proposals echoes the initial estimates (for validity checks).
	Proposals []int

	// Steps is the number of scheduled network operations.
	Steps int

	// Errs records per-process terminal errors (permanently crashed
	// processes report msgnet.ErrCrashed).
	Errs map[core.PID]error
}

type rmsg struct {
	r   int
	est int
}

type roundView struct {
	view map[core.PID]int
	d    core.Set
}

// procState is one process's cross-incarnation record. The crashed
// incarnation is parked before its successor spawns, so there is no
// concurrent access.
type procState struct {
	completed map[int]roundView
	recovered bool
	rejoined  bool
	replayed  int
	lost      int
	decided   bool
	decision  int
}

// RunRounds executes the n−f round protocol under crash-and-recover faults.
// Every process journals with the write-ahead discipline (durable emit before
// broadcast, batched views); a restarted incarnation recovers its estimate
// from the durable journal, resumes after its last journaled round — never
// re-emitting a round the network may already have seen — and catches up by
// skipping rounds it can no longer complete. While it lags, it is simply
// missing from the quorums its peers assemble: it re-enters via suspicion,
// appearing in D(j,r) until it completes a round again.
//
// Decisions use the one-round quorum rule: a process decides min of its
// final-round view iff it assembled that view, which bounds distinct
// decisions by f+1 exactly as in the fail-stop analysis — recovery costs
// liveness (an uncaught-up process abstains), never safety.
func RunRounds(n, f, rounds int, cfg Config) (*Outcome, error) {
	if n <= 0 || f < 0 || f >= n {
		return nil, fmt.Errorf("recovery: invalid n=%d f=%d", n, f)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("recovery: invalid rounds=%d", rounds)
	}
	journals := cfg.Journals
	if journals == nil {
		journals = make([]Journal, n)
		for i := range journals {
			journals[i] = NewMemJournal()
		}
	}
	if len(journals) != n {
		return nil, fmt.Errorf("recovery: %d journals for %d processes", len(journals), n)
	}
	proposals := cfg.Proposals
	if proposals == nil {
		proposals = make([]int, n)
		for i := range proposals {
			proposals[i] = i
		}
	}
	if len(proposals) != n {
		return nil, fmt.Errorf("recovery: %d proposals for %d processes", len(proposals), n)
	}
	flushEvery := cfg.FlushEvery
	if flushEvery < 1 {
		flushEvery = 1
	}
	watchdog := cfg.WatchdogSteps
	if watchdog < 1 {
		watchdog = 2048
	}
	var ob obs.Observer = obs.Base{}
	if o := obs.Multi(cfg.Net.Observer); o != nil {
		ob = o
	}

	procs := make([]*procState, n)
	for i := range procs {
		procs[i] = &procState{completed: make(map[int]roundView)}
	}

	out, err := msgnet.Run(n, cfg.Net, func(nd *msgnet.Node) (core.Value, error) {
		me := procs[nd.Me]
		j := journals[nd.Me]
		est := proposals[nd.Me]
		r := 1
		var bugView map[core.PID]int

		if nd.Incarnation > 1 {
			// Recovery path. The honest order is crash-then-recover: the
			// volatile tail is gone before we look. The planted bug peeks at
			// the un-flushed state first and trusts it.
			if cfg.AmnesiaBug {
				stale, err := j.Unflushed()
				if err != nil {
					return nil, err
				}
				bugView = stale.LastView
			}
			before, err := j.Unflushed()
			if err != nil {
				return nil, err
			}
			if err := j.Crash(); err != nil {
				return nil, err
			}
			st, err := j.Recover()
			if err != nil {
				return nil, err
			}
			me.recovered = true
			me.replayed = st.Round
			me.lost = before.Entries - st.Entries
			if st.HasEst {
				est = st.Est
			}
			r = st.Round + 1
			ob.Event("recovery.recover", st.Round, int(nd.Me), map[string]any{
				"replayed_rounds": st.Round,
				"lost_records":    me.lost,
				"resume_round":    r,
			})
		}

		future := make(map[int]map[core.PID]int)
		sinceFlush := 0
		for r <= rounds {
			// Durable emit before broadcast: a later incarnation resumes
			// after this round and can never contradict this message.
			if err := j.LogEmit(r, est); err != nil {
				return nil, err
			}
			if err := nd.Broadcast(rmsg{r: r, est: est}); err != nil {
				return nil, err
			}
			got := future[r]
			if got == nil {
				got = make(map[core.PID]int)
			}
			delete(future, r)
			deadline := nd.Clock() + watchdog
			timedOut := false
			for len(got) < n-f {
				env, ok, err := nd.RecvTimeout(deadline)
				if err != nil {
					return nil, err
				}
				if !ok {
					timedOut = true
					break
				}
				m, mok := env.Payload.(rmsg)
				if !mok {
					return nil, fmt.Errorf("recovery: foreign payload %T", env.Payload)
				}
				if m.est < est {
					est = m.est // min-flood from any round, late or early
				}
				switch {
				case m.r == r:
					got[env.From] = m.est
				case m.r > r: // early: buffer
					if future[m.r] == nil {
						future[m.r] = make(map[core.PID]int)
					}
					future[m.r][env.From] = m.est
				default: // late: discard
				}
			}
			if timedOut {
				// The round cannot complete (peers moved on, or too many are
				// down). Skip to the newest round the network is talking
				// about; the skipped rounds keep us in our peers' D sets.
				next := r + 1
				for fr := range future {
					if fr > next {
						next = fr
					}
				}
				r = next
				continue
			}
			d := core.FullSet(n)
			for p := range got {
				d.Remove(p)
			}
			if err := j.LogView(r, got, d); err != nil {
				return nil, err
			}
			sinceFlush++
			// The final view must be durable before the decision it
			// justifies — crash-recovery's log-before-act rule.
			if sinceFlush >= flushEvery || r == rounds {
				if err := j.Flush(); err != nil {
					return nil, err
				}
				sinceFlush = 0
			}
			me.completed[r] = roundView{view: got, d: d}
			if me.recovered && !me.rejoined {
				me.rejoined = true
				ob.Event("recovery.rejoin", r, int(nd.Me), map[string]any{
					"round": r,
				})
			}
			r++
		}

		if cfg.AmnesiaBug && bugView != nil {
			// The planted bug: decide from the pre-crash un-logged view as
			// if it were durable truth.
			me.decided, me.decision = true, minOf(bugView)
		} else if v, ok := me.completed[rounds]; ok {
			me.decided, me.decision = true, minOf(v.view)
		}
		if me.decided {
			return me.decision, nil
		}
		return nil, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Outcome{
		Decisions: make(map[core.PID]int),
		Crashed:   out.Crashed,
		Restarted: out.Restarted,
		Rejoined:  core.NewSet(n),
		Replayed:  make(map[core.PID]int),
		Lost:      make(map[core.PID]int),
		Journals:  journals,
		Proposals: proposals,
		Steps:     out.Steps,
		Errs:      out.Errs,
	}
	maxR := 0
	for i, ps := range procs {
		pid := core.PID(i)
		if ps.decided {
			res.Decisions[pid] = ps.decision
		}
		if ps.rejoined {
			res.Rejoined.Add(pid)
		}
		if ps.recovered {
			res.Replayed[pid] = ps.replayed
			res.Lost[pid] = ps.lost
		}
		for r := range ps.completed {
			if r > maxR {
				maxR = r
			}
		}
	}
	res.Trace = core.NewTrace(n)
	for r := 1; r <= maxR; r++ {
		rec := core.RoundRecord{
			R:        r,
			Suspects: make([]core.Set, n),
			Deliver:  make([]core.Set, n),
			Active:   core.NewSet(n),
			Crashed:  core.NewSet(n),
		}
		for i := 0; i < n; i++ {
			pid := core.PID(i)
			if rv, ok := procs[i].completed[r]; ok {
				rec.Active.Add(pid)
				rec.Suspects[i] = rv.d
				rec.Deliver[i] = rv.d.Complement()
			} else {
				rec.Suspects[i] = core.NewSet(n)
				rec.Deliver[i] = core.NewSet(n)
				if out.Crashed.Has(pid) {
					rec.Crashed.Add(pid)
				}
			}
		}
		res.Trace.Append(rec)
	}
	return res, nil
}

func minOf(view map[core.PID]int) int {
	first := true
	m := 0
	for _, v := range view {
		if first || v < m {
			m, first = v, false
		}
	}
	return m
}
