package recovery

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/msgnet"
	"repro/internal/obs"
)

func TestMemJournalDurabilityClasses(t *testing.T) {
	j := NewMemJournal()
	v1 := map[core.PID]int{0: 3, 1: 1}
	if err := j.LogEmit(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := j.LogView(1, v1, core.SetOf(3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.LogEmit(2, 1); err != nil {
		t.Fatal(err)
	}

	// Emits are write-through; the view is still volatile.
	st, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 2 || !st.HasEst || st.Est != 1 || st.LastView != nil {
		t.Fatalf("durable state before flush: %+v", st)
	}
	un, err := j.Unflushed()
	if err != nil {
		t.Fatal(err)
	}
	if un.LastViewRound != 1 || len(un.LastView) != 2 {
		t.Fatalf("unflushed state missing the view: %+v", un)
	}

	// A crash destroys the volatile view; a flush would have saved it.
	if err := j.Crash(); err != nil {
		t.Fatal(err)
	}
	st, err = j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.LastView != nil || st.Round != 2 || st.Est != 1 {
		t.Fatalf("post-crash state: %+v", st)
	}
	if j.Lost != 1 {
		t.Fatalf("lost %d records, want 1", j.Lost)
	}

	if err := j.LogView(2, v1, core.SetOf(3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := j.Crash(); err != nil {
		t.Fatal(err)
	}
	st, err = j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.LastViewRound != 2 {
		t.Fatalf("flushed view lost: %+v", st)
	}
}

func TestDiskJournalRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	j, err := OpenDiskJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.LogEmit(1, 7); err != nil {
		t.Fatal(err)
	}
	if err := j.LogView(1, map[core.PID]int{0: 7, 1: 4}, core.SetOf(3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.LogEmit(2, 4); err != nil {
		t.Fatal(err)
	}
	// Crash (close + reopen) must preserve everything written so far.
	if err := j.Crash(); err != nil {
		t.Fatal(err)
	}
	st, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 2 || st.Est != 4 || st.LastViewRound != 1 || st.LastView[1] != 4 {
		t.Fatalf("recovered state: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from scratch — the journal is a plain WAL directory.
	j2, err := OpenDiskJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st2, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Round != st.Round || st2.Est != st.Est || st2.LastViewRound != st.LastViewRound {
		t.Fatalf("reopened state %+v differs from %+v", st2, st)
	}
}

func TestRunRoundsFaultFree(t *testing.T) {
	const n, f, rounds = 4, 1, 3
	out, err := RunRounds(n, f, rounds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Decisions) != n {
		t.Fatalf("%d of %d processes decided: %v", len(out.Decisions), n, out.Decisions)
	}
	if err := Audit(out, n, f, rounds); err != nil {
		t.Fatalf("audit: %v", err)
	}
	// No recovery happened, so the stricter fail-stop validation also holds.
	if err := out.Trace.ValidateFailStop(); err != nil {
		t.Fatalf("fail-stop validation: %v", err)
	}
	if out.Restarted.Count() != 0 || out.Rejoined.Count() != 0 {
		t.Fatalf("phantom restarts: restarted=%s rejoined=%s", out.Restarted, out.Rejoined)
	}
}

// TestCrashRecoverRejoin is the tentpole scenario: p0 crashes mid-run, the
// supervisor restarts it, it recovers from its durable journal, re-enters via
// suspicion (it appears in peers' D sets while down) and catches back up.
func TestCrashRecoverRejoin(t *testing.T) {
	const n, f, rounds = 5, 1, 6
	metrics := obs.NewMetrics()
	cfg := Config{
		Net: msgnet.Config{
			Crash:    map[core.PID]int{0: 7},
			Restart:  map[core.PID]int{0: 30},
			Observer: metrics,
		},
		FlushEvery: 3, // leave a real amnesia window
	}
	out, err := RunRounds(n, f, rounds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Restarted.Has(0) {
		t.Fatalf("p0 not restarted: %s", out.Restarted)
	}
	if !out.Rejoined.Has(0) {
		t.Fatalf("p0 never rejoined: rejoined=%s decisions=%v trace:\n%s",
			out.Rejoined, out.Decisions, out.Trace)
	}
	if err := Audit(out, n, f, rounds); err != nil {
		t.Fatalf("audit: %v", err)
	}

	// Re-entry via suspicion: while p0 was down some peer's D(j,r) named it,
	// and p0's Active membership is non-monotone (out, then back in).
	suspectedWhileDown := false
	sawGap := false
	wasOut := false
	for r := 1; r <= out.Trace.Len(); r++ {
		rec := out.Trace.Round(r)
		if !rec.Active.Has(0) {
			wasOut = true
			rec.Active.ForEach(func(p core.PID) {
				if rec.Suspects[p].Has(0) {
					suspectedWhileDown = true
				}
			})
		} else if wasOut {
			sawGap = true
		}
	}
	if !suspectedWhileDown {
		t.Fatalf("no peer suspected p0 while it was down:\n%s", out.Trace)
	}
	if !sawGap {
		t.Fatalf("p0's Active membership is monotone — it never left and returned:\n%s", out.Trace)
	}
	// This trace must pass the structural check and fail the fail-stop one.
	if err := out.Trace.Validate(); err != nil {
		t.Fatalf("structural validation: %v", err)
	}
	if err := out.Trace.ValidateFailStop(); err == nil {
		t.Fatal("a recovery trace with a rejoin passed fail-stop validation")
	}
	if out.Replayed[0] < 1 {
		t.Fatalf("p0 replayed %d journaled rounds, want >= 1", out.Replayed[0])
	}

	// The event stream fed the recovery counters.
	snap := metrics.Snapshot().Recovery
	if snap == nil {
		t.Fatal("metrics snapshot lacks recovery counters")
	}
	if snap.Restarts != 1 || snap.Recoveries != 1 || snap.Rejoins != 1 {
		t.Fatalf("recovery counters %+v, want 1 restart/recovery/rejoin", *snap)
	}
	if snap.ReplayedRounds != int64(out.Replayed[0]) || snap.LostRecords != int64(out.Lost[0]) {
		t.Fatalf("counters %+v disagree with outcome replayed=%d lost=%d", *snap, out.Replayed[0], out.Lost[0])
	}
}

// TestRecoveredProcessAbstains: a process restarted after everyone else has
// finished cannot assemble any quorum again; it must abstain, not decide
// from stale state.
func TestRecoveredProcessAbstains(t *testing.T) {
	const n, f, rounds = 4, 1, 3
	cfg := Config{
		Net: msgnet.Config{
			Crash:   map[core.PID]int{0: 5},
			Restart: map[core.PID]int{0: 200000},
		},
		WatchdogSteps: 64,
	}
	out, err := RunRounds(n, f, rounds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Restarted.Has(0) {
		t.Fatalf("p0 not restarted: %s", out.Restarted)
	}
	if _, decided := out.Decisions[0]; decided {
		t.Fatalf("stranded recovered process decided: %v", out.Decisions)
	}
	if err := Audit(out, n, f, rounds); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

// TestAmnesiaBugCaught plants the bug — a recovered process deciding from
// its pre-crash un-flushed view — and checks the audit flags it as a
// durability violation.
func TestAmnesiaBugCaught(t *testing.T) {
	const n, f, rounds = 5, 1, 4
	cfg := Config{
		Net: msgnet.Config{
			Crash:   map[core.PID]int{0: 11}, // after round 1 completes
			Restart: map[core.PID]int{0: 200000},
		},
		FlushEvery:    10, // round-1 view stays volatile
		WatchdogSteps: 64,
		AmnesiaBug:    true,
	}
	out, err := RunRounds(n, f, rounds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, decided := out.Decisions[0]
	if !decided {
		t.Fatalf("buggy process did not decide; lost=%v decisions=%v", out.Lost, out.Decisions)
	}
	if out.Lost[0] == 0 {
		t.Fatalf("crash destroyed no journal records — no amnesia window opened")
	}
	auditErr := Audit(out, n, f, rounds)
	var ae *AuditError
	if !errors.As(auditErr, &ae) || ae.Kind != "durability" || ae.Proc != 0 {
		t.Fatalf("audit returned %v, want a durability violation at p0 (decision %d)", auditErr, d)
	}

	// The honest configuration on the identical schedule is clean.
	honest := cfg
	honest.AmnesiaBug = false
	hout, err := RunRounds(n, f, rounds, honest)
	if err != nil {
		t.Fatal(err)
	}
	if err := Audit(hout, n, f, rounds); err != nil {
		t.Fatalf("honest run failed audit: %v", err)
	}
}

// TestDiskJournalRecovery runs the protocol over WAL-backed journals: the
// round trip must work end to end against real files.
func TestDiskJournalRecovery(t *testing.T) {
	const n, f, rounds = 4, 1, 3
	root := t.TempDir()
	journals := make([]Journal, n)
	for i := range journals {
		j, err := OpenDiskJournal(filepath.Join(root, "p", string(rune('0'+i))))
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		journals[i] = j
	}
	cfg := Config{
		Net: msgnet.Config{
			Crash:   map[core.PID]int{1: 6},
			Restart: map[core.PID]int{1: 25},
		},
		Journals: journals,
	}
	out, err := RunRounds(n, f, rounds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Audit(out, n, f, rounds); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if !out.Restarted.Has(1) {
		t.Fatalf("p1 not restarted: %s", out.Restarted)
	}
}
