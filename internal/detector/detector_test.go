package detector

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/predicate"
)

// randomSHistory builds a classical S history over n processes and T steps:
// the process `accurate` is never suspected; everyone else is suspected at
// random.
func randomSHistory(n, steps int, accurate core.PID, seed int64) *History {
	rng := rand.New(rand.NewSource(seed))
	h := &History{N: n}
	for t := 0; t < steps; t++ {
		step := make([]core.Set, n)
		for i := 0; i < n; i++ {
			s := core.NewSet(n)
			for j := 0; j < n; j++ {
				if core.PID(j) != accurate && rng.Intn(3) == 0 {
					s.Add(core.PID(j))
				}
			}
			step[i] = s
		}
		h.Suspicions = append(h.Suspicions, step)
	}
	return h
}

func TestWeakAccuracy(t *testing.T) {
	h := randomSHistory(5, 8, 2, 1)
	if err := h.CheckWeakAccuracy(); err != nil {
		t.Fatal(err)
	}
	// Break it: have everyone suspected at least once.
	bad := randomSHistory(3, 2, 0, 1)
	bad.Suspicions[0][1].Add(0)
	bad.Suspicions[0][0].Add(1)
	bad.Suspicions[1][0].Add(2)
	if err := bad.CheckWeakAccuracy(); err == nil {
		t.Fatal("expected weak accuracy violation")
	}
}

func TestStrongCompleteness(t *testing.T) {
	n := 4
	h := &History{N: n}
	// p3 crashes; correct = {0,1,2}. From time 2 on, all correct suspect
	// p3.
	for t1 := 1; t1 <= 4; t1++ {
		step := make([]core.Set, n)
		for i := 0; i < n; i++ {
			s := core.NewSet(n)
			if t1 >= 2 {
				s.Add(3)
			}
			step[i] = s
		}
		h.Suspicions = append(h.Suspicions, step)
	}
	correct := core.SetOf(n, 0, 1, 2)
	if err := h.CheckStrongCompleteness(core.SetOf(n, 3), correct); err != nil {
		t.Fatal(err)
	}
	// Break it: p1 stops suspecting p3 at the last step.
	h.Suspicions[3][1].Remove(3)
	if err := h.CheckStrongCompleteness(core.SetOf(n, 3), correct); err == nil {
		t.Fatal("expected completeness violation")
	}
}

func TestFromTraceSatisfiesS(t *testing.T) {
	// An item-6 RRFD execution, read as a detector history, satisfies
	// weak accuracy.
	n := 6
	tr, err := core.CollectTrace(n, 8, adversary.SpareNeverSuspected(n, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	h := FromTrace(tr)
	if h.Len() != 8 {
		t.Fatalf("history has %d steps", h.Len())
	}
	if err := h.CheckWeakAccuracy(); err != nil {
		t.Fatal(err)
	}
}

func TestOracleRoundTrip(t *testing.T) {
	// Classical S history → RRFD adversary → trace: the trace must
	// satisfy the item 6 predicate, and the paper's equivalent predicate
	// (eq. (1)'s budget clause with f = n−1).
	n := 6
	for spare := core.PID(0); spare < core.PID(n); spare++ {
		h := randomSHistory(n, 10, spare, int64(spare))
		tr, err := core.CollectTrace(n, 10, Oracle(h))
		if err != nil {
			t.Fatal(err)
		}
		if err := predicate.NeverSuspectedExists().Check(tr); err != nil {
			t.Fatalf("spare %d: %v", spare, err)
		}
		if err := predicate.TotalSuspectBudget(n - 1).Check(tr); err != nil {
			t.Fatalf("spare %d: %v", spare, err)
		}
	}
}

func TestPredicateEquivalenceItem6(t *testing.T) {
	// The paper's predicate manipulation: "some process never suspected"
	// is the same as |⋃⋃D| < n. Check both implications over hostile
	// generators.
	n := 6
	gen := func(seed int64) *core.Trace {
		tr, err := core.CollectTrace(n, 8, adversary.SpareNeverSuspected(n, core.PID(seed%int64(n)), seed))
		if err != nil {
			panic(err)
		}
		return tr
	}
	if err := predicate.Implies(gen, predicate.NeverSuspectedExists(), predicate.TotalSuspectBudget(n-1), 60); err != nil {
		t.Fatal(err)
	}
	if err := predicate.Implies(gen, predicate.TotalSuspectBudget(n-1), predicate.NeverSuspectedExists(), 60); err != nil {
		t.Fatal(err)
	}
}

func TestConsensusWithClassicalS(t *testing.T) {
	// End to end: a classical S history drives the RRFD engine and the
	// rotating-coordinator algorithm solves consensus — the Chandra–Toueg
	// result rederived inside the RRFD framework.
	n := 6
	inputs := make([]core.Value, n)
	for i := range inputs {
		inputs[i] = i * 10
	}
	for seed := int64(0); seed < 20; seed++ {
		h := randomSHistory(n, n+2, core.PID(seed)%core.PID(n), seed)
		res, err := core.Run(n, inputs, agreement.RotatingCoordinator(), Oracle(h))
		if err != nil {
			t.Fatal(err)
		}
		if err := agreement.Validate(res, inputs, 1, n); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
