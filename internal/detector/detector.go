// Package detector connects the paper's RRFDs to the classical failure
// detectors of Chandra, Hadzilacos and Toueg (§2 item 6 and the §7 research
// direction). The classical detector S satisfies:
//
//   - strong completeness: every process that crashes is eventually
//     suspected permanently by every correct process;
//   - weak accuracy: some correct process is never suspected by anyone.
//
// The paper's observation is that the RRFD counterpart of an asynchronous
// system augmented with S is simply the predicate "some process appears in
// no D(i,r)" (NeverSuspectedExists) — strong completeness comes for free in
// a round-based system, because an unsuspected crashed process would block
// the round forever, vacuously implementing anything. The package provides
// the conversion in both directions and the predicate-manipulation
// equivalence the paper uses to reduce wait-free consensus with S to
// consensus in the synchronous send-omission model with f = n−1.
package detector

import (
	"fmt"

	"repro/internal/core"
)

// History records classical failure-detector output over discrete time:
// At(t)[p] is the set of processes p suspects at time t (1-based).
type History struct {
	// N is the number of processes.
	N int

	// Suspicions[t-1][p] is process p's suspect set at time t.
	Suspicions [][]core.Set
}

// Len returns the number of recorded time steps.
func (h *History) Len() int { return len(h.Suspicions) }

// At returns the suspicion sets at time t (1-based), or nil if out of
// range.
func (h *History) At(t int) []core.Set {
	if t < 1 || t > len(h.Suspicions) {
		return nil
	}
	return h.Suspicions[t-1]
}

// EverSuspected returns the processes suspected by anyone at any time.
func (h *History) EverSuspected() core.Set {
	u := core.NewSet(h.N)
	for _, step := range h.Suspicions {
		for _, s := range step {
			u = u.Union(s)
		}
	}
	return u
}

// CheckWeakAccuracy verifies S's accuracy property over the history: some
// process is never suspected by anyone. (In the RRFD reading this is
// exactly predicate.NeverSuspectedExists.)
func (h *History) CheckWeakAccuracy() error {
	if ever := h.EverSuspected(); ever.Count() >= h.N {
		return fmt.Errorf("detector: weak accuracy violated: every process suspected (%s)", ever)
	}
	return nil
}

// CheckStrongCompleteness verifies that every process in crashed is, from
// some time on, suspected by every process in correct at every later time.
func (h *History) CheckStrongCompleteness(crashed, correct core.Set) error {
	var err error
	crashed.ForEach(func(c core.PID) {
		if err != nil {
			return
		}
		// Find the last time some correct process does NOT suspect c;
		// completeness needs that to be strictly before the end.
		lastMiss := 0
		for t := 1; t <= h.Len(); t++ {
			step := h.At(t)
			correct.ForEach(func(p core.PID) {
				if !step[p].Has(c) {
					lastMiss = t
				}
			})
		}
		if lastMiss == h.Len() {
			err = fmt.Errorf("detector: strong completeness violated: crashed %d unsuspected at the end", c)
		}
	})
	return err
}

// FromTrace reads an RRFD execution as a classical detector history: the
// round-r suspicion of process p is D(p,r). If the trace satisfies the §2
// item 6 predicate, the resulting history satisfies weak accuracy; if the
// execution's crashed processes were (as the engine enforces) suspected by
// all once dead, it satisfies strong completeness too.
func FromTrace(t *core.Trace) *History {
	h := &History{N: t.N}
	for _, rec := range t.Rounds {
		step := make([]core.Set, t.N)
		for i := 0; i < t.N; i++ {
			step[i] = rec.Suspects[i].Clone()
		}
		h.Suspicions = append(h.Suspicions, step)
	}
	return h
}

// Oracle adapts a classical detector history into an RRFD adversary: in
// round r, process p's suspect set is its detector output at time r (the
// processes p gave up waiting for), clipped so the plan stays legal
// (D ≠ S, and p never suspects itself — waiting for oneself is free).
// Rounds beyond the history reuse its final step.
//
// This is the §2 item 6 construction: "processes use the failure detector S
// to advance from one round to the next; D(i,r) is the value that allows
// p_i to complete round r".
func Oracle(h *History) core.Oracle {
	return core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		t := r
		if t > h.Len() {
			t = h.Len()
		}
		step := h.At(t)
		sus := make([]core.Set, h.N)
		for i := 0; i < h.N; i++ {
			p := core.PID(i)
			if !active.Has(p) {
				sus[i] = core.NewSet(h.N)
				continue
			}
			d := step[i].Intersect(active)
			d.Remove(p)
			sus[i] = d
		}
		return core.RoundPlan{Suspects: sus}
	})
}
