package swmr

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkRegisterOps measures scheduler-mediated register throughput.
func BenchmarkRegisterOps(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			const opsPerProc = 50
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := Run(n, Config{Chooser: Seeded(int64(i))}, func(p *Proc) (core.Value, error) {
					for k := 0; k < opsPerProc; k++ {
						if err := p.Write("r", k); err != nil {
							return nil, err
						}
					}
					return nil, nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if out.Steps != n*opsPerProc {
					b.Fatalf("steps = %d", out.Steps)
				}
			}
			b.ReportMetric(float64(n*opsPerProc), "memops/run")
		})
	}
}

// BenchmarkCollect measures the n-read collect primitive.
func BenchmarkCollect(b *testing.B) {
	n := 8
	for i := 0; i < b.N; i++ {
		_, err := Run(n, Config{Chooser: Seeded(int64(i))}, func(p *Proc) (core.Value, error) {
			if err := p.Write("v", int(p.Me)); err != nil {
				return nil, err
			}
			_, err := p.Collect("v")
			return nil, err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExplore measures model-checking throughput (schedules/second).
func BenchmarkExplore(b *testing.B) {
	schedules := 0
	for i := 0; i < b.N; i++ {
		count, err := Explore(10000, func(ch Chooser) error {
			_, err := Run(2, Config{Chooser: ch}, func(p *Proc) (core.Value, error) {
				if err := p.Write("a", 1); err != nil {
					return nil, err
				}
				return nil, p.Write("b", 2)
			})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		schedules += count
	}
	b.ReportMetric(float64(schedules)/float64(b.N), "schedules/op")
}
