// Package swmr provides an asynchronous single-writer multi-reader (SWMR)
// shared-memory substrate: the system model of §2 item 4 and the foundation
// for the atomic-snapshot object (§2 item 5), the adopt-commit protocol
// (§4.2), and Theorem 3.3's detector construction.
//
// Each process runs as its own goroutine and accesses memory only through
// Proc.Read / Proc.Write. A cooperative scheduler serializes the operations:
// every register operation is one atomic step, and an explicit Chooser
// decides which pending operation executes next. This yields linearizable
// registers by construction, full control over interleavings (seeded random,
// round-robin, or exhaustive exploration for model checking), and precise
// crash injection (a crashed process's next operation fails with ErrCrashed
// and is never scheduled again).
package swmr

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// ErrCrashed is returned from a register operation when the scheduler has
// crashed the calling process. Protocol bodies must propagate it and return.
var ErrCrashed = errors.New("swmr: process crashed")

// ErrMaxSteps is returned by Run when the step budget is exhausted before
// all processes finish (a livelock guard).
var ErrMaxSteps = errors.New("swmr: step budget exhausted")

// Bottom is the initial value of every register (the paper's ⊥).
var Bottom core.Value = nil

// Chooser picks which pending operation runs next: it receives the global
// step number and the sorted PIDs with a pending operation, and returns an
// index into that slice. Choosers are the scheduling adversary.
type Chooser func(step int, runnable []core.PID) int

// RoundRobin returns a chooser that cycles fairly through pending processes.
func RoundRobin() Chooser {
	next := 0
	return func(step int, runnable []core.PID) int {
		next++
		return next % len(runnable)
	}
}

// Seeded returns a deterministic pseudo-random chooser.
func Seeded(seed int64) Chooser {
	// xorshift64* keeps the chooser allocation-free and reproducible.
	s := uint64(seed)*2685821657736338717 + 1
	return func(step int, runnable []core.PID) int {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return int((s * 2685821657736338717 >> 33) % uint64(len(runnable)))
	}
}

// PriorityGroups returns a chooser that always schedules within the
// earliest listed group that has a runnable process, rotating round-robin
// inside the group; runnable processes in no group run last. This expresses
// "run these to completion before those" adversaries — e.g. the schedule
// that witnesses the Corollary 4.4 lower bound.
func PriorityGroups(groups ...[]core.PID) Chooser {
	counter := 0
	return func(step int, runnable []core.PID) int {
		for _, g := range groups {
			var idxs []int
			for i, p := range runnable {
				for _, q := range g {
					if p == q {
						idxs = append(idxs, i)
						break
					}
				}
			}
			if len(idxs) > 0 {
				counter++
				return idxs[counter%len(idxs)]
			}
		}
		return 0
	}
}

// Body is the protocol code one process runs. It must access shared state
// only through p and must return promptly once an operation reports
// ErrCrashed.
type Body func(p *Proc) (core.Value, error)

// Config tunes an execution.
type Config struct {
	// Chooser decides scheduling; nil means Seeded(1).
	Chooser Chooser

	// Crash maps a process to the number of register operations it
	// completes before crashing: Crash[p] = 0 crashes p's first
	// operation. Processes not present never crash.
	Crash map[core.PID]int

	// MaxSteps bounds total scheduled operations; 0 means 1<<20.
	MaxSteps int
}

// Outcome reports a finished execution.
type Outcome struct {
	// Values holds the return value of each process whose body returned
	// without error.
	Values map[core.PID]core.Value

	// Errs holds the body error of each process that returned one
	// (crashed processes report ErrCrashed).
	Errs map[core.PID]error

	// Steps is the number of register operations scheduled.
	Steps int

	// Crashed is the set of processes crashed by the scheduler.
	Crashed core.Set
}

// Decided returns the set of processes that returned a value.
func (o *Outcome) Decided() core.Set {
	n := o.Crashed.Universe()
	s := core.NewSet(n)
	for p := range o.Values {
		s.Add(p)
	}
	return s
}

type regKey struct {
	owner core.PID
	name  string
}

type memory struct {
	cells   map[regKey]core.Value
	objects map[string]core.Value
}

func (m *memory) read(k regKey) core.Value { return m.cells[k] }

func (m *memory) write(k regKey, v core.Value) { m.cells[k] = v }

type request struct {
	pid   core.PID
	apply func(m *memory) core.Value
	reply chan result
}

type result struct {
	v   core.Value
	err error
}

type procEvent struct {
	pid core.PID
	req *request // non-nil: an operation; nil: the body returned
	out core.Value
	err error
}

// Proc is one process's handle to the shared memory.
type Proc struct {
	// Me is this process's identity.
	Me core.PID

	// N is the number of processes.
	N int

	events chan<- procEvent
	reply  chan result
}

// Write sets the caller's register name. Only the owner may write a
// register; Write always writes p.Me's register.
func (p *Proc) Write(name string, v core.Value) error {
	k := regKey{owner: p.Me, name: name}
	_, err := p.do(func(m *memory) core.Value {
		m.write(k, v)
		return nil
	})
	return err
}

// Read returns the current value of owner's register name (Bottom if never
// written).
func (p *Proc) Read(owner core.PID, name string) (core.Value, error) {
	k := regKey{owner: owner, name: name}
	return p.do(func(m *memory) core.Value { return m.read(k) })
}

// Atomic applies fn to the named auxiliary object's state in one scheduler
// step and returns fn's result. It models invoking a linearizable shared
// object that the system is ASSUMED to provide — e.g. the k-set-consensus
// oracle of Theorem 3.3, which cannot be built from registers (that
// impossibility is the very content of §3/§4). fn must be deterministic;
// the initial state is Bottom.
func (p *Proc) Atomic(name string, fn func(state core.Value) (newState, result core.Value)) (core.Value, error) {
	return p.do(func(m *memory) core.Value {
		if m.objects == nil {
			m.objects = make(map[string]core.Value)
		}
		next, res := fn(m.objects[name])
		m.objects[name] = next
		return res
	})
}

// Collect reads register name of every process, one register operation per
// process in increasing PID order, and returns the n values (Bottom for
// unwritten entries). A collect is NOT atomic — it is n separate steps, as
// in the real model.
func (p *Proc) Collect(name string) ([]core.Value, error) {
	out := make([]core.Value, p.N)
	for i := 0; i < p.N; i++ {
		v, err := p.Read(core.PID(i), name)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (p *Proc) do(apply func(m *memory) core.Value) (core.Value, error) {
	req := &request{pid: p.Me, apply: apply, reply: p.reply}
	p.events <- procEvent{pid: p.Me, req: req}
	res := <-p.reply
	return res.v, res.err
}

// Run executes body at every process under the configured scheduler and
// returns once every process body has returned. It never leaks goroutines:
// crashed processes receive ErrCrashed on their pending and subsequent
// operations, so well-formed bodies unwind promptly, and Run waits for all
// of them.
func Run(n int, cfg Config, body Body) (*Outcome, error) {
	if n <= 0 {
		return nil, fmt.Errorf("swmr: invalid process count %d", n)
	}
	chooser := cfg.Chooser
	if chooser == nil {
		chooser = Seeded(1)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}

	events := make(chan procEvent)
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		procs[i] = &Proc{Me: core.PID(i), N: n, events: events, reply: make(chan result, 1)}
	}
	for i := 0; i < n; i++ {
		go func(p *Proc) {
			out, err := body(p)
			events <- procEvent{pid: p.Me, out: out, err: err}
		}(procs[i])
	}

	mem := &memory{cells: make(map[regKey]core.Value)}
	out := &Outcome{
		Values:  make(map[core.PID]core.Value, n),
		Errs:    make(map[core.PID]error),
		Crashed: core.NewSet(n),
	}
	pending := make(map[core.PID]*request, n)
	opsDone := make(map[core.PID]int, n)
	finished := 0
	computing := n // processes neither finished nor blocked on an op
	step := 0
	var overflow error

	for finished < n {
		// Quiesce: wait until every live process is blocked or done.
		for computing > 0 {
			ev := <-events
			computing--
			if ev.req != nil {
				pending[ev.pid] = ev.req
				continue
			}
			finished++
			if ev.err != nil {
				out.Errs[ev.pid] = ev.err
			} else {
				out.Values[ev.pid] = ev.out
			}
		}
		if finished == n {
			break
		}
		if len(pending) == 0 {
			return nil, errors.New("swmr: deadlock: live processes with no pending operations")
		}

		runnable := make([]core.PID, 0, len(pending))
		for pid := range pending {
			runnable = append(runnable, pid)
		}
		sort.Slice(runnable, func(i, j int) bool { return runnable[i] < runnable[j] })

		var pick core.PID
		if overflow != nil {
			pick = runnable[0] // drain deterministically after overflow
		} else {
			idx := chooser(step, runnable)
			if idx < 0 || idx >= len(runnable) {
				return nil, fmt.Errorf("swmr: chooser returned %d for %d runnable", idx, len(runnable))
			}
			pick = runnable[idx]
		}
		req := pending[pick]
		delete(pending, pick)

		limit, hasLimit := cfg.Crash[pick]
		switch {
		case overflow != nil, hasLimit && opsDone[pick] >= limit:
			if overflow == nil {
				out.Crashed.Add(pick)
			}
			req.reply <- result{err: ErrCrashed}
		default:
			v := req.apply(mem)
			opsDone[pick]++
			req.reply <- result{v: v}
		}
		computing++
		step++
		if step > maxSteps && overflow == nil {
			overflow = ErrMaxSteps
		}
	}
	out.Steps = step
	if overflow != nil {
		return out, overflow
	}
	return out, nil
}
