package swmr

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrExploreLimit is returned by Explore when maxSchedules executions were
// run without exhausting the schedule space.
var ErrExploreLimit = errors.New("swmr: schedule space not exhausted within limit")

// NondeterministicReplayError is returned by Explore when replaying a
// schedule prefix presented a different number of runnable options than the
// recorded choice tree — i.e. run is not a deterministic function of the
// scheduler's choices and the search results would be meaningless.
type NondeterministicReplayError struct {
	// Depth is the choice-tree depth at which replay diverged.
	Depth int

	// Want is the option count recorded when this node was first visited;
	// Got is the count observed on replay.
	Want, Got int
}

func (e *NondeterministicReplayError) Error() string {
	return fmt.Sprintf("swmr: non-deterministic replay at depth %d: %d options recorded, %d on replay",
		e.Depth, e.Want, e.Got)
}

// Explore model-checks a system over every possible scheduling of its
// operations. run is invoked once per schedule with a replay Chooser and must
// build a fresh system, execute it, and return an error to abort the search
// (e.g. a property violation, wrapped with context). Explore returns the
// number of schedules executed.
//
// The search is a depth-first enumeration of the scheduler's choice tree. It
// is exhaustive for terminating systems; maxSchedules caps the search and
// ErrExploreLimit reports an un-exhausted space.
func Explore(maxSchedules int, run func(ch Chooser) error) (int, error) {
	type frame struct {
		choice  int
		options int
	}
	var stack []frame
	schedules := 0
	for {
		depth := 0
		var replayErr *NondeterministicReplayError
		ch := func(step int, runnable []core.PID) int {
			if depth == len(stack) {
				stack = append(stack, frame{choice: 0, options: len(runnable)})
			}
			f := &stack[depth]
			if f.options != len(runnable) && replayErr == nil {
				// The tree is deterministic given the prefix; a mismatch
				// means run is not replayable. The chooser cannot fail, so
				// record the divergence and keep returning in-range choices
				// until run comes back; Explore aborts then.
				replayErr = &NondeterministicReplayError{
					Depth: depth, Want: f.options, Got: len(runnable),
				}
			}
			depth++
			if replayErr != nil {
				if f.choice < len(runnable) {
					return f.choice
				}
				return 0
			}
			return f.choice
		}
		err := run(ch)
		if replayErr != nil {
			// The divergence invalidates whatever run reported.
			return schedules, replayErr
		}
		if err != nil {
			return schedules, err
		}
		schedules++
		if schedules >= maxSchedules {
			return schedules, ErrExploreLimit
		}
		// Backtrack: drop the unexplored tail recorded beyond this run's
		// depth, then advance the deepest choice with options left.
		stack = stack[:depth]
		for len(stack) > 0 {
			last := &stack[len(stack)-1]
			if last.choice+1 < last.options {
				last.choice++
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return schedules, nil
		}
	}
}
