package swmr

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/mc"
)

// ErrExploreLimit is matched (via errors.Is) by the error Explore returns
// when maxSchedules executions were run without exhausting the schedule
// space. The concrete error is an *ExploreLimitError carrying the count.
var ErrExploreLimit = errors.New("swmr: schedule space not exhausted within limit")

// ExploreLimitError reports an un-exhausted schedule space together with
// the schedules that did run, so callers that only propagate the error —
// not the count return value — lose no information.
type ExploreLimitError struct {
	// Schedules is how many schedules executed before the limit.
	Schedules int
}

// Error implements error.
func (e *ExploreLimitError) Error() string {
	return fmt.Sprintf("swmr: schedule space not exhausted within limit (%d schedules run)", e.Schedules)
}

// Is reports ErrExploreLimit equivalence, keeping errors.Is(err,
// ErrExploreLimit) working across the structured upgrade.
func (e *ExploreLimitError) Is(target error) bool { return target == ErrExploreLimit }

// NondeterministicReplayError is returned by Explore when replaying a
// schedule prefix presented a different number of runnable options than the
// recorded choice tree — i.e. run is not a deterministic function of the
// scheduler's choices and the search results would be meaningless.
type NondeterministicReplayError struct {
	// Depth is the choice-tree depth at which replay diverged.
	Depth int

	// Want is the option count recorded when this node was first visited;
	// Got is the count observed on replay.
	Want, Got int
}

func (e *NondeterministicReplayError) Error() string {
	return fmt.Sprintf("swmr: non-deterministic replay at depth %d: %d options recorded, %d on replay",
		e.Depth, e.Want, e.Got)
}

// Explore model-checks a system over every possible scheduling of its
// operations. run is invoked once per schedule with a replay Chooser and must
// build a fresh system, execute it, and return an error to abort the search
// (e.g. a property violation, wrapped with context). Explore returns the
// number of schedules executed.
//
// The search is a depth-first enumeration of the scheduler's choice tree,
// delegated to the substrate-agnostic explorer in internal/mc. It is
// exhaustive for terminating systems; maxSchedules caps the search and an
// *ExploreLimitError (matching ErrExploreLimit) reports an un-exhausted
// space. No reduction is applied: every interleaving is its own schedule,
// so counts are exactly the tree's leaf count.
func Explore(maxSchedules int, run func(ch Chooser) error) (int, error) {
	res, err := mc.Explore(mc.Options{
		MaxSchedules: maxSchedules,
		// run closures routinely capture counters (see internal/exp), so
		// the subtrees must share the caller's goroutine.
		Workers: 1,
		// Keep the historical contract: the violating schedule is
		// reported exactly as found.
		NoShrink: true,
	}, func(ctx *mc.Ctx) error {
		return run(func(step int, runnable []core.PID) int {
			return ctx.Choose(len(runnable))
		})
	})
	schedules := 0
	if res != nil {
		schedules = res.Schedules
	}
	var div *mc.DivergenceError
	if errors.As(err, &div) {
		return schedules, &NondeterministicReplayError{Depth: div.Depth, Want: div.Want, Got: div.Got}
	}
	if err != nil {
		return schedules, err
	}
	if res.Counterexample != nil {
		return schedules, res.Counterexample.Err
	}
	if res.LimitHit {
		return schedules, &ExploreLimitError{Schedules: schedules}
	}
	return schedules, nil
}
