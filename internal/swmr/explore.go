package swmr

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrExploreLimit is returned by Explore when maxSchedules executions were
// run without exhausting the schedule space.
var ErrExploreLimit = errors.New("swmr: schedule space not exhausted within limit")

// Explore model-checks a system over every possible scheduling of its
// operations. run is invoked once per schedule with a replay Chooser and must
// build a fresh system, execute it, and return an error to abort the search
// (e.g. a property violation, wrapped with context). Explore returns the
// number of schedules executed.
//
// The search is a depth-first enumeration of the scheduler's choice tree. It
// is exhaustive for terminating systems; maxSchedules caps the search and
// ErrExploreLimit reports an un-exhausted space.
func Explore(maxSchedules int, run func(ch Chooser) error) (int, error) {
	type frame struct {
		choice  int
		options int
	}
	var stack []frame
	schedules := 0
	for {
		depth := 0
		ch := func(step int, runnable []core.PID) int {
			if depth == len(stack) {
				stack = append(stack, frame{choice: 0, options: len(runnable)})
			}
			f := &stack[depth]
			if f.options != len(runnable) {
				// The tree is deterministic given the prefix; a mismatch
				// means run is not replayable.
				panic(fmt.Sprintf("swmr: non-deterministic replay at depth %d: %d vs %d options",
					depth, f.options, len(runnable)))
			}
			depth++
			return f.choice
		}
		if err := run(ch); err != nil {
			return schedules, err
		}
		schedules++
		if schedules >= maxSchedules {
			return schedules, ErrExploreLimit
		}
		// Backtrack: drop the unexplored tail recorded beyond this run's
		// depth, then advance the deepest choice with options left.
		stack = stack[:depth]
		for len(stack) > 0 {
			last := &stack[len(stack)-1]
			if last.choice+1 < last.options {
				last.choice++
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return schedules, nil
		}
	}
}
