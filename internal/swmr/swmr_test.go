package swmr

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestWriteReadRoundTrip(t *testing.T) {
	out, err := Run(2, Config{}, func(p *Proc) (core.Value, error) {
		if err := p.Write("x", int(p.Me)+100); err != nil {
			return nil, err
		}
		// Spin until the other process's register is visible.
		other := core.PID(1 - p.Me)
		for {
			v, err := p.Read(other, "x")
			if err != nil {
				return nil, err
			}
			if v != Bottom {
				return v, nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Values[0] != 101 || out.Values[1] != 100 {
		t.Fatalf("Values = %v", out.Values)
	}
	if len(out.Errs) != 0 {
		t.Fatalf("Errs = %v", out.Errs)
	}
}

func TestReadUnwrittenIsBottom(t *testing.T) {
	out, err := Run(1, Config{}, func(p *Proc) (core.Value, error) {
		return p.Read(0, "nothing")
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Values[0] != Bottom {
		t.Fatalf("read of unwritten register = %v, want Bottom", out.Values[0])
	}
}

func TestCollect(t *testing.T) {
	out, err := Run(3, Config{}, func(p *Proc) (core.Value, error) {
		if err := p.Write("v", int(p.Me)); err != nil {
			return nil, err
		}
		for {
			vals, err := p.Collect("v")
			if err != nil {
				return nil, err
			}
			missing := false
			for _, v := range vals {
				if v == Bottom {
					missing = true
				}
			}
			if !missing {
				return fmt.Sprintf("%v", vals), nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range out.Values {
		if v != "[0 1 2]" {
			t.Fatalf("process %d collected %v", p, v)
		}
	}
}

func TestCrashInjection(t *testing.T) {
	// p1 crashes on its very first operation; p0 must still finish.
	out, err := Run(2, Config{Crash: map[core.PID]int{1: 0}}, func(p *Proc) (core.Value, error) {
		if err := p.Write("x", int(p.Me)); err != nil {
			return nil, err
		}
		return int(p.Me), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out.Errs[1], ErrCrashed) {
		t.Fatalf("p1 err = %v, want ErrCrashed", out.Errs[1])
	}
	if out.Values[0] != 0 {
		t.Fatalf("p0 = %v", out.Values[0])
	}
	if !out.Crashed.Equal(core.SetOf(2, 1)) {
		t.Fatalf("Crashed = %s", out.Crashed)
	}
	if !out.Decided().Equal(core.SetOf(2, 0)) {
		t.Fatalf("Decided = %s", out.Decided())
	}
}

func TestCrashAfterKOps(t *testing.T) {
	// p0 completes exactly 2 ops then crashes; its writes must be visible.
	out, err := Run(2, Config{Crash: map[core.PID]int{0: 2}}, func(p *Proc) (core.Value, error) {
		if p.Me == 0 {
			if err := p.Write("a", "first"); err != nil {
				return nil, err
			}
			if err := p.Write("a", "second"); err != nil {
				return nil, err
			}
			if err := p.Write("a", "third"); err != nil {
				return nil, err
			}
			return "unreachable", nil
		}
		for {
			v, err := p.Read(0, "a")
			if err != nil {
				return nil, err
			}
			if v == "second" {
				return v, nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out.Errs[0], ErrCrashed) {
		t.Fatalf("p0 err = %v", out.Errs[0])
	}
	if out.Values[1] != "second" {
		t.Fatalf("p1 saw %v, want second (crash after 2 ops)", out.Values[1])
	}
}

func TestMaxStepsLivelock(t *testing.T) {
	// A body that spins forever must trip the step budget, and Run must
	// still unwind every goroutine.
	_, err := Run(2, Config{MaxSteps: 100}, func(p *Proc) (core.Value, error) {
		for {
			if _, err := p.Read(0, "never"); err != nil {
				return nil, err
			}
		}
	})
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
}

func TestDeterministicScheduling(t *testing.T) {
	run := func() string {
		out, err := Run(3, Config{Chooser: Seeded(42)}, func(p *Proc) (core.Value, error) {
			if err := p.Write("v", int(p.Me)); err != nil {
				return nil, err
			}
			vals, err := p.Collect("v")
			if err != nil {
				return nil, err
			}
			return fmt.Sprintf("%v", vals), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v|%d", out.Values, out.Steps)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different executions:\n%s\n%s", a, b)
	}
}

func TestSchedulerActuallyInterleaves(t *testing.T) {
	// Different seeds should produce different collected views somewhere.
	results := make(map[string]bool)
	for seed := int64(0); seed < 30; seed++ {
		out, err := Run(3, Config{Chooser: Seeded(seed)}, func(p *Proc) (core.Value, error) {
			if err := p.Write("v", int(p.Me)); err != nil {
				return nil, err
			}
			vals, err := p.Collect("v")
			if err != nil {
				return nil, err
			}
			return fmt.Sprintf("%v", vals), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		results[fmt.Sprintf("%v", out.Values)] = true
	}
	if len(results) < 2 {
		t.Fatalf("30 seeds produced only %d distinct executions", len(results))
	}
}

func TestExploreCountsInterleavings(t *testing.T) {
	// Two processes, two ops each: the schedule tree has C(4,2) = 6
	// leaves (interleavings of two length-2 sequences).
	count, err := Explore(1000, func(ch Chooser) error {
		_, err := Run(2, Config{Chooser: ch}, func(p *Proc) (core.Value, error) {
			if err := p.Write("a", 1); err != nil {
				return nil, err
			}
			if err := p.Write("b", 2); err != nil {
				return nil, err
			}
			return nil, nil
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Fatalf("Explore found %d schedules, want 6", count)
	}
}

func TestExploreFindsRace(t *testing.T) {
	// Classic lost-update shape: both processes read a counter register
	// owned by p0 then p0 writes. Exploration must find a schedule where
	// p1 reads Bottom and one where it reads the written value.
	sawBottom, sawValue := false, false
	_, err := Explore(1000, func(ch Chooser) error {
		out, err := Run(2, Config{Chooser: ch}, func(p *Proc) (core.Value, error) {
			if p.Me == 0 {
				return nil, p.Write("c", 7)
			}
			return p.Read(0, "c")
		})
		if err != nil {
			return err
		}
		if out.Values[1] == Bottom {
			sawBottom = true
		} else {
			sawValue = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawBottom || !sawValue {
		t.Fatalf("exploration incomplete: bottom=%v value=%v", sawBottom, sawValue)
	}
}

func TestExploreLimit(t *testing.T) {
	_, err := Explore(2, func(ch Chooser) error {
		_, err := Run(3, Config{Chooser: ch}, func(p *Proc) (core.Value, error) {
			return nil, p.Write("x", 1)
		})
		return err
	})
	if !errors.Is(err, ErrExploreLimit) {
		t.Fatalf("err = %v, want ErrExploreLimit", err)
	}
}

func TestRoundRobinChooser(t *testing.T) {
	// Fairness: with three single-op processes, round-robin must let all
	// of them run (each performs its op).
	out, err := Run(3, Config{Chooser: RoundRobin()}, func(p *Proc) (core.Value, error) {
		return nil, p.Write("x", int(p.Me))
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Steps != 3 {
		t.Fatalf("steps = %d", out.Steps)
	}
}

func TestPriorityGroupsOrdering(t *testing.T) {
	// With strict priority p2 > p1 > p0 and single-op bodies, the write
	// order must be exactly 2, 1, 0.
	var order []core.PID
	_, err := Run(3, Config{Chooser: PriorityGroups([]core.PID{2}, []core.PID{1}, []core.PID{0})},
		func(p *Proc) (core.Value, error) {
			_, err := p.Atomic("log", func(state core.Value) (core.Value, core.Value) {
				order = append(order, p.Me)
				return nil, nil
			})
			return nil, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Fatalf("order = %v, want [2 1 0]", order)
	}
}

func TestPriorityGroupsUngroupedRunLast(t *testing.T) {
	var order []core.PID
	_, err := Run(3, Config{Chooser: PriorityGroups([]core.PID{1})},
		func(p *Proc) (core.Value, error) {
			_, err := p.Atomic("log", func(state core.Value) (core.Value, core.Value) {
				order = append(order, p.Me)
				return nil, nil
			})
			return nil, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 {
		t.Fatalf("order = %v, want p1 first", order)
	}
}

func TestAtomicObject(t *testing.T) {
	// A shared counter: each process increments atomically 10 times; the
	// final value must be exactly 3×10 with no lost updates.
	out, err := Run(3, Config{Chooser: Seeded(5)}, func(p *Proc) (core.Value, error) {
		var last core.Value
		for i := 0; i < 10; i++ {
			v, err := p.Atomic("ctr", func(state core.Value) (core.Value, core.Value) {
				c, _ := state.(int)
				return c + 1, c + 1
			})
			if err != nil {
				return nil, err
			}
			last = v
		}
		return last, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, v := range out.Values {
		if v.(int) > max {
			max = v.(int)
		}
	}
	if max != 30 {
		t.Fatalf("final counter = %d, want 30", max)
	}
}

func TestAtomicKSetObject(t *testing.T) {
	// The Theorem 3.3 oracle shape: a k-set-consensus object that stores
	// the first k proposals and answers with the first stored one.
	k := 2
	out, err := Run(5, Config{Chooser: Seeded(9)}, func(p *Proc) (core.Value, error) {
		return p.Atomic("kset", func(state core.Value) (core.Value, core.Value) {
			stored, _ := state.([]core.Value)
			if len(stored) < k {
				stored = append(stored, int(p.Me))
			}
			return stored, stored[0]
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := make(map[core.Value]bool)
	for _, v := range out.Values {
		distinct[v] = true
	}
	if len(distinct) > k {
		t.Fatalf("k-set object returned %d distinct values", len(distinct))
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(0, Config{}, func(p *Proc) (core.Value, error) { return nil, nil }); err == nil {
		t.Fatal("expected error for n=0")
	}
}

// TestExploreNondeterministicReplay: a run whose choice tree is not a
// function of the scheduler's choices must surface a structured error, not a
// panic, so callers can report which prefix diverged.
func TestExploreNondeterministicReplay(t *testing.T) {
	pids := []core.PID{0, 1, 2}
	invocation := 0
	_, err := Explore(100, func(ch Chooser) error {
		invocation++
		opts := 2
		if invocation > 1 {
			opts = 3 // the runnable set grew between replays
		}
		ch(0, pids[:opts])
		return nil
	})
	var nde *NondeterministicReplayError
	if !errors.As(err, &nde) {
		t.Fatalf("err = %v, want NondeterministicReplayError", err)
	}
	if nde.Depth != 0 || nde.Want != 2 || nde.Got != 3 {
		t.Fatalf("divergence %+v, want depth 0 with 2 recorded vs 3 observed", nde)
	}
}

// TestExploreLimitCarriesCount: the structured *ExploreLimitError reports
// how many schedules ran before the limit, so callers that only keep the
// error lose no information.
func TestExploreLimitCarriesCount(t *testing.T) {
	count, err := Explore(2, func(ch Chooser) error {
		_, err := Run(3, Config{Chooser: ch}, func(p *Proc) (core.Value, error) {
			return nil, p.Write("x", 1)
		})
		return err
	})
	var limit *ExploreLimitError
	if !errors.As(err, &limit) {
		t.Fatalf("err = %v, want *ExploreLimitError", err)
	}
	if limit.Schedules != count || limit.Schedules == 0 {
		t.Fatalf("limit.Schedules = %d, return value %d; want equal and nonzero", limit.Schedules, count)
	}
	if !strings.Contains(limit.Error(), "schedules run") {
		t.Fatalf("error text lacks the count: %q", limit.Error())
	}
}
