package exp

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/msgnet"
	"repro/internal/predicate"
	"repro/internal/semisync"
)

// Exhaustive-proof spaces are enumerated with predicate.ExhaustiveImplies;
// see that function for the size arithmetic.

// E14SemiSync validates Theorem 5.1 and produces the paper's headline
// series: consensus steps-per-process in the semi-synchronous model — the
// 2-step algorithm (via the eq. (5) detector) against the 2n-step baseline.
func E14SemiSync(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "semi-synchronous consensus: 2 steps vs 2n steps",
		Ref:     "§5, Theorem 5.1",
		Columns: []string{"n", "seeds", "eq5", "2-step alg", "2n-step baseline", "speedup"},
	}
	seeds := seedsFor(quick, 25)
	sizes := []int{2, 4, 8, 16, 32, 64}
	if quick {
		sizes = []int{2, 4, 8, 16}
	}
	for _, n := range sizes {
		inputs := identityInputs(n)
		eq5OK := true
		fastSteps := 0
		for seed := 0; seed < seeds; seed++ {
			out, err := semisync.RunTwoStep(n, 2, semisync.Config{Chooser: semisync.Seeded(int64(seed))}, inputs)
			if err != nil {
				return nil, err
			}
			if predicate.IdenticalSuspects().Check(out.Trace) != nil {
				eq5OK = false
			}
			if s := out.Outcome.MaxDecisionSteps(); s > fastSteps {
				fastSteps = s
			}
		}
		slow, err := semisync.Run(n, semisync.Config{Chooser: semisync.RoundRobin()},
			semisync.RelayFactory(), inputs)
		if err != nil {
			return nil, err
		}
		slowSteps := slow.MaxDecisionSteps()
		t.AddRow(n, seeds, verdict(eq5OK), fastSteps, slowSteps,
			fmt.Sprintf("%.0fx", float64(slowSteps)/float64(fastSteps)))
	}
	t.AddNote("the 2-step algorithm implements eq. (5) — the k=1 detector — and decides by Theorem 3.1")
	t.AddNote("baseline is the faithful-in-spirit 2n-step substitute for the DDS algorithm (see DESIGN.md)")
	return t, nil
}

// E15Lattice validates the submodel relations §2 sets up: which predicates
// imply which, and which are separated by concrete executions.
func E15Lattice(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "the RRFD submodel lattice",
		Ref:     "§2 framing, §3, §5",
		Columns: []string{"relation", "generator", "trials", "verdict"},
	}
	trials := seedsFor(quick, 60)
	n := 8

	type implication struct {
		name string
		gen  predicate.TraceGen
		a, b predicate.P
	}
	// Every generator funnels through captureGen: a failed trace generation
	// surfaces as the experiment's error (and the CLI's exit code) instead
	// of a panic mid-sweep.
	var genErrs []*error
	genFor := func(mk func(seed int64) core.Oracle, rounds int) predicate.TraceGen {
		g, e := captureGen(n, func(seed int64) (*core.Trace, error) {
			return core.CollectTrace(n, rounds, mk(seed))
		})
		genErrs = append(genErrs, e)
		return g
	}
	firstGenErr := func() error {
		for _, e := range genErrs {
			if *e != nil {
				return *e
			}
		}
		return nil
	}
	implications := []implication{
		{
			name: "crash(f) ⇒ omission(f)",
			gen:  genFor(func(s int64) core.Oracle { return adversary.Crash(n, 3, s) }, 10),
			a:    predicate.SyncCrash(3), b: predicate.SendOmission(3),
		},
		{
			name: "snapshot(f) ⇒ shared-memory(f)",
			gen:  genFor(func(s int64) core.Oracle { return adversary.SnapshotChain(n, 3, s) }, 8),
			a:    predicate.AtomicSnapshot(3), b: predicate.SharedMemory(3),
		},
		{
			name: "shared-memory(f) ⇒ async-mp(f)",
			gen:  genFor(func(s int64) core.Oracle { return adversary.SharedMem(n, 4, s) }, 8),
			a:    predicate.SharedMemory(4), b: predicate.PerRoundBudget(4),
		},
		{
			name: "snapshot(k−1) ⇒ k-set-detector(k), k=3",
			gen:  genFor(func(s int64) core.Oracle { return adversary.SnapshotChain(n, 2, s) }, 8),
			a:    predicate.AtomicSnapshot(2), b: predicate.KSetDetector(3),
		},
		{
			name: "eq5 ⇒ k-set-detector(1)",
			gen:  genFor(func(s int64) core.Oracle { return adversary.Identical(n, s) }, 8),
			a:    predicate.IdenticalSuspects(), b: predicate.KSetDetector(1),
		},
		{
			name: "never-suspected ⇔ budget(n−1) (→)",
			gen:  genFor(func(s int64) core.Oracle { return adversary.SpareNeverSuspected(n, core.PID(s)%core.PID(n), s) }, 8),
			a:    predicate.NeverSuspectedExists(), b: predicate.TotalSuspectBudget(n - 1),
		},
		{
			name: "never-suspected ⇔ budget(n−1) (←)",
			gen:  genFor(func(s int64) core.Oracle { return adversary.SpareNeverSuspected(n, core.PID(s)%core.PID(n), s) }, 8),
			a:    predicate.TotalSuspectBudget(n - 1), b: predicate.NeverSuspectedExists(),
		},
	}
	for _, im := range implications {
		err := predicate.Implies(im.gen, im.a, im.b, trials)
		t.AddRow(im.name, "adversarial", trials, verdict(err == nil))
	}

	type separation struct {
		name string
		gen  predicate.TraceGen
		a, b predicate.P
	}
	separations := []separation{
		{
			name: "async-mp(f) ⇏ shared-memory (2f ≥ n partitions)",
			gen: func() predicate.TraceGen {
				g, e := captureGen(2, func(seed int64) (*core.Trace, error) {
					out, err := msgnet.RunRounds(2, 1, 3, msgnet.Config{Chooser: msgnet.Seeded(seed)}, nil)
					if err != nil {
						return nil, err
					}
					return out.Trace, nil
				})
				genErrs = append(genErrs, e)
				return g
			}(),
			a: predicate.PerRoundBudget(1), b: predicate.SomeoneSeenByAll(),
		},
		{
			name: "no-mutual-miss ⇏ eq.(4) (miss cycles)",
			gen:  genFor(func(s int64) core.Oracle { return adversary.NoMutualMissOracle(n, 3, s) }, 8),
			a:    predicate.NoMutualMiss(), b: predicate.SomeoneSeenByAll(),
		},
		{
			name: "B(f,t) ⇏ async-mp(f) (A strict submodel of B)",
			gen: func() predicate.TraceGen {
				g, e := captureGen(9, func(seed int64) (*core.Trace, error) {
					return core.CollectTrace(9, 8, adversary.BSystemOracle(9, 2, 4, seed))
				})
				genErrs = append(genErrs, e)
				return g
			}(),
			a: predicate.BSystem(2, 4), b: predicate.PerRoundBudget(2),
		},
		{
			name: "omission(f) ⇏ crash propagation",
			gen:  genFor(func(s int64) core.Oracle { return adversary.Omission(n, 3, 0.6, s) }, 10),
			a:    predicate.SendOmission(3), b: predicate.SuspicionPropagates(),
		},
	}
	for _, sp := range separations {
		_, err := predicate.Separates(sp.gen, sp.a, sp.b, 250)
		t.AddRow(sp.name, "witness search", 250, verdict(err == nil))
	}
	if err := firstGenErr(); err != nil {
		return nil, err
	}

	// Exhaustive PROOFS over tiny universes: every trace of the space is
	// enumerated, so a pass is a theorem for that universe, not a sample.
	type proof struct {
		name      string
		n, rounds int
		a, b      predicate.P
	}
	proofs := []proof{
		{"snapshot(1) ⇒ shared-memory(1) [proof]", 3, 1, predicate.AtomicSnapshot(1), predicate.SharedMemory(1)},
		{"shared-memory(1) ⇒ async-mp(1) [proof]", 3, 1, predicate.SharedMemory(1), predicate.PerRoundBudget(1)},
		{"eq5 ⇒ k-set-detector(1) [proof]", 3, 1, predicate.IdenticalSuspects(), predicate.KSetDetector(1)},
		{"snapshot(k−1) ⇒ k-set-detector(k), k=2 [proof]", 3, 1, predicate.AtomicSnapshot(1), predicate.KSetDetector(2)},
		{"crash(2) ⇒ omission(2) [proof]", 3, 2, predicate.SyncCrash(2), predicate.SendOmission(2)},
	}
	for _, p := range proofs {
		if quick && p.rounds > 1 {
			continue // the 117k-trace space is full-mode only
		}
		checked, satisfying, err := predicate.ExhaustiveImplies(p.n, p.rounds, p.a, p.b)
		t.AddRow(p.name, fmt.Sprintf("exhaustive n=%d r=%d", p.n, p.rounds), checked,
			verdict(err == nil && satisfying > 0))
	}
	// Exact separation census: the miss-cycle observation of §2 item 4.
	checked, witnesses, err := predicate.ExhaustiveWitnesses(3, 1,
		predicate.And("nmm+eq3", predicate.PerRoundBudget(1), predicate.NoMutualMiss()),
		predicate.SomeoneSeenByAll())
	if err != nil {
		return nil, err
	}
	t.AddRow("no-mutual-miss ⇏ eq.(4) [census]", "exhaustive n=3 r=1", checked,
		verdict(witnesses == 2))
	t.AddNote("the census finds exactly 2 witnesses — the two orientations of the 3-cycle the paper describes")
	return t, nil
}
