package exp

import (
	"bytes"
	"testing"
)

// TestSweepWorkersByteIdentical renders a spread of experiments — seeded
// sweeps (E06, E10, E12), summed-accumulator sweeps (X03), the fanned-out
// exhaustive searches (E11, X04) — at workers=1 and workers=8 and requires
// byte-identical tables: the determinism contract SetWorkers promises.
func TestSweepWorkersByteIdentical(t *testing.T) {
	targets := map[string]bool{
		"E06": true, "E10": true, "E11": true, "E12": true,
		"X03": true, "X04": true,
	}
	render := func(workers int) string {
		SetWorkers(workers)
		defer SetWorkers(1)
		var b bytes.Buffer
		for _, r := range All() {
			if !targets[r.ID] {
				continue
			}
			table, err := r.Run(true)
			if err != nil {
				t.Fatalf("%s at workers=%d: %v", r.ID, workers, err)
			}
			table.Fprint(&b)
		}
		return b.String()
	}
	want := render(1)
	got := render(8)
	if got != want {
		t.Fatalf("workers=8 tables differ from workers=1:\n--- workers=8 ---\n%s\n--- workers=1 ---\n%s", got, want)
	}
}

// TestSetWorkersClamp checks negative values mean "one per CPU" (0), not a
// stuck-forever panic inside par.
func TestSetWorkersClamp(t *testing.T) {
	SetWorkers(-5)
	defer SetWorkers(1)
	if sweepWorkers.Load() != 0 {
		t.Fatalf("SetWorkers(-5) stored %d, want 0", sweepWorkers.Load())
	}
	rs, err := sweep(3, func(seed int) (int, error) { return seed * seed, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rs {
		if v != i*i {
			t.Fatalf("rs[%d] = %d, want %d", i, v, i*i)
		}
	}
}
