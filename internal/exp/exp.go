// Package exp is the experiment harness: one runner per experiment in
// DESIGN.md §5 (E01–E15), each regenerating the table recorded in
// EXPERIMENTS.md. The paper (a PODC theory extended abstract) has no
// numeric tables; its "evaluation" is its theorems and constructions, so
// every experiment here validates one theorem/construction and reports the
// measured quantities whose SHAPE the paper predicts (who wins, by what
// factor, where the bounds sit).
//
// Runners take a quick flag: quick mode shrinks sweeps for use in tests;
// full mode is what cmd/experiments runs.
package exp

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/predicate"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier (e.g. "E07").
	ID string

	// Title describes the experiment.
	Title string

	// Ref cites the paper source (section/theorem).
	Ref string

	// Columns and Rows hold the tabular results.
	Columns []string
	Rows    [][]string

	// Notes hold free-form observations printed under the table.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "(%s)\n", t.Ref)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, "  "+b.String())
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner is an experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(quick bool) (*Table, error)
}

// All returns every experiment in DESIGN.md order.
func All() []Runner {
	return []Runner{
		{ID: "E01", Name: "sync send-omission ≡ eq.(1)", Run: E01SyncOmission},
		{ID: "E02", Name: "crash submodel of omission", Run: E02CrashSubmodel},
		{ID: "E03", Name: "async rounds ≡ eq.(3); B system", Run: E03AsyncRounds},
		{ID: "E04", Name: "shared memory ≡ eqs.(3)+(4); cycle conjecture", Run: E04SharedMemory},
		{ID: "E05", Name: "atomic snapshot ≡ item 5 predicate", Run: E05Snapshot},
		{ID: "E06", Name: "consensus under detector-S RRFD", Run: E06ConsensusS},
		{ID: "E07", Name: "one-round k-set agreement (Thm 3.1)", Run: E07OneRoundKSet},
		{ID: "E08", Name: "k-set with k−1 failures on snapshots (Cor 3.2)", Run: E08KSetSharedMem},
		{ID: "E09", Name: "detector from a k-set object (Thm 3.3)", Run: E09DetectorFromKSet},
		{ID: "E10", Name: "sync omission from async snapshots (Thm 4.1)", Run: E10OmissionSim},
		{ID: "E11", Name: "adopt-commit correctness (§4.2)", Run: E11AdoptCommit},
		{ID: "E12", Name: "sync crash from async snapshots (Thm 4.3)", Run: E12CrashSim},
		{ID: "E13", Name: "⌊f/k⌋+1 lower bound (Cor 4.2/4.4)", Run: E13LowerBound},
		{ID: "E14", Name: "semi-synchronous 2 vs 2n steps (Thm 5.1)", Run: E14SemiSync},
		{ID: "E15", Name: "submodel lattice", Run: E15Lattice},
		{ID: "X01", Name: "full information: FIFO + emulated write", Run: X01FullInformation},
		{ID: "X02", Name: "immediate snapshots (ref. [4])", Run: X02ImmediateSnapshot},
		{ID: "X03", Name: "ABD register over message passing (ref. [22])", Run: X03ABDRegister},
		{ID: "X04", Name: "ablations: broken variants fail observably", Run: X04Ablations},
		{ID: "X05", Name: "derived-model catalog: one expression, three artifacts", Run: X05CatalogModels},
	}
}

// verdict renders a pass/fail cell.
func verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATED"
}

// captureGen adapts a fallible trace generator to the infallible
// predicate.TraceGen signature without panicking: the first generation error
// is captured in the returned pointer, and subsequent calls yield an empty
// n-process trace (which every predicate passes vacuously, so the sweep
// finishes cleanly). Callers must check the captured error after the sweep
// and propagate it — the experiment's table is meaningless if it is set.
func captureGen(n int, gen func(seed int64) (*core.Trace, error)) (predicate.TraceGen, *error) {
	genErr := new(error)
	return func(seed int64) *core.Trace {
		tr, err := gen(seed)
		if err != nil {
			if *genErr == nil {
				*genErr = err
			}
			return core.NewTrace(n)
		}
		return tr
	}, genErr
}

// seedsFor returns the sweep width for the mode.
func seedsFor(quick bool, full int) int {
	if quick {
		if full > 8 {
			return 8
		}
		return full
	}
	return full
}

// sweepWorkers is the worker count every experiment seed sweep fans out
// over; see SetWorkers.
var sweepWorkers atomic.Int32

// SetWorkers sets how many workers the experiment seed sweeps use: n > 0
// is used as given (1 forces sequential sweeps), anything else means one
// worker per logical CPU. Tables are byte-identical for any worker count —
// seeds are fixed per index and rows are reduced in seed order — so this
// only changes wall-clock time.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	sweepWorkers.Store(int32(n))
}

// sweep runs body(seed) for seed = 0..seeds-1 across the configured
// workers and returns the per-seed results in seed order (the lowest-seed
// error wins, like a sequential loop's early return). Each body call must
// derive all randomness from its seed; reductions over the returned slice
// stay in the caller, which keeps every table independent of scheduling.
func sweep[T any](seeds int, body func(seed int) (T, error)) ([]T, error) {
	return par.Sweep(int(sweepWorkers.Load()), seeds, body)
}
