package exp

import (
	"fmt"
	"io"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/hoalg"
	"repro/internal/mc"
)

// X05CatalogModels sweeps the derived-model catalog (internal/hoalg)
// through all three compiled artifacts: each model's expression is
// enumerated branch by branch under the mc explorer (schedules must
// exhaust with the compiled checker attached as a trace property), and
// chaos-tested on the virtual substrate under its honest compiled plan
// (zero violations) and under its negation's breaker plan (the compiled
// checker must catch it). One expression, three validated artifacts —
// the single-source-of-truth claim, measured.
func X05CatalogModels(quick bool) (*Table, error) {
	t := &Table{
		ID:      "X05",
		Title:   "derived-model catalog: one expression, three artifacts",
		Ref:     "arXiv 2004.10619 elementary patterns over §2–§5 models",
		Columns: []string{"model", "expression", "new", "mc schedules (n=3)", "honest plan", "breaker plan"},
	}

	const (
		n, f, k = 3, 1, 2
		chaosN  = 5
		seed    = 11
	)
	runs := 4
	if quick {
		runs = 2
	}
	p := hoalg.Params{N: n, F: f, K: k, Stab: 1}
	chaosP := hoalg.Params{N: chaosN, F: f, K: k, Stab: 1}

	models := hoalg.Catalog()
	rows, err := sweep(len(models), func(i int) ([]string, error) {
		m := models[i]

		schedules, err := exploreModel(m.Build(p), n, f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}

		ce := m.Build(chaosP)
		honest, err := modelCampaign(ce, ce, chaosN, f, k, runs, seed)
		if err != nil {
			return nil, fmt.Errorf("%s honest: %w", m.Name, err)
		}
		breaker, err := modelCampaign(ce, hoalg.Not(ce), chaosN, f, k, runs, seed)
		if err != nil {
			return nil, fmt.Errorf("%s breaker: %w", m.Name, err)
		}

		isNew := ""
		if m.New {
			isNew = "yes"
		}
		return []string{
			m.Name, ce.String(), isNew,
			fmt.Sprintf("%d", schedules),
			verdict(honest.Ok()),
			caught(len(breaker.Violations) > 0),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.AddNote("mc: every branch explored to exhaustion at n=%d, f=%d with the compiled checker as a trace property", n, f)
	t.AddNote("chaos: %d lock-step runs at n=%d under the compiled fault plan; breaker = plan of the negated expression", runs, chaosN)
	return t, nil
}

// exploreModel runs the mc explorer over every enumeration branch of the
// expression with the compiled checker attached, returning the total
// schedule count. Exploration must exhaust — a bound hit means the table
// under-reports the model's schedule space.
func exploreModel(e *hoalg.Expr, n, f int) (int, error) {
	branches, err := e.EnumBranches(n)
	if err != nil {
		return 0, err
	}
	pred := e.Compile()
	inputs := make([]core.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	total := 0
	for _, b := range branches {
		enum := b.Enum
		res, err := mc.Explore(mc.Options{}, mc.CheckRun(mc.RunSpec{
			N:      n,
			Inputs: inputs,
			// FloodMin terminates in its fixed round count whatever the
			// model suspects, so even quorum-starving models (a process
			// hearing nobody) explore cleanly. The agreement bound such a
			// model actually warrants is per-model theory (E-series);
			// here validity plus the compiled trace property suffice.
			Factory: agreement.FloodMin(f + 1),
			Oracle: func(ctx *mc.Ctx) core.Oracle {
				return adversary.Enumerated(ctx, n, adversary.Enum(enum))
			},
			Props: []mc.Property{mc.Validity(inputs)},
			Model: &pred,
			// Mark stays off: state-hash pruning is unsound under a
			// whole-trace property (see mc.RunSpec.Model).
		}))
		if err != nil {
			return 0, err
		}
		if res.Counterexample != nil {
			return 0, fmt.Errorf("branch %q found a counterexample: %v", b.Expr, res.Counterexample.Err)
		}
		if !res.Exhausted {
			return 0, fmt.Errorf("branch %q did not exhaust", b.Expr)
		}
		total += res.Schedules
	}
	return total, nil
}

// modelCampaign runs a lock-step chaos campaign checking expression e's
// compiled predicate against the compiled plan of planFrom.
func modelCampaign(e, planFrom *hoalg.Expr, n, f, k, runs int, seed int64) (*chaos.Summary, error) {
	plan, err := planFrom.CompilePlan(n, seed)
	if err != nil {
		return nil, err
	}
	pred := e.Compile()
	return chaos.Run(chaos.Config{
		N: n, F: f, K: k,
		Rounds:     3,
		Runs:       runs,
		Seed:       seed,
		SyncRounds: true,
		FixedPlan:  &plan,
		TracePred:  &pred,
		Out:        io.Discard,
	}), nil
}

// caught renders the breaker-plan cell: catching the planned violation is
// the success; an escape is the harness failure the experiment test greps
// for.
func caught(hit bool) string {
	if hit {
		return "caught"
	}
	return "VIOLATED"
}
