package exp

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/msgnet"
	"repro/internal/predicate"
	"repro/internal/simulate"
	"repro/internal/snapshot"
	"repro/internal/swmr"
)

// E01SyncOmission validates §2 item 1: hostile send-omission schedules
// satisfy eq. (1), and the cumulative suspicion never exceeds the fault
// budget f.
func E01SyncOmission(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E01",
		Title:   "synchronous send-omission system ≡ predicate eq.(1)",
		Ref:     "§2 item 1",
		Columns: []string{"n", "f", "rounds", "seeds", "max|∪∪D|", "eq1"},
	}
	seeds := seedsFor(quick, 40)
	for _, tc := range []struct{ n, f int }{{4, 1}, {8, 3}, {8, 7}, {16, 8}} {
		maxCum, ok := 0, true
		for seed := 0; seed < seeds; seed++ {
			tr, err := core.CollectTrace(tc.n, 10, adversary.Omission(tc.n, tc.f, 0.8, int64(seed)))
			if err != nil {
				return nil, err
			}
			if predicate.SendOmission(tc.f).Check(tr) != nil {
				ok = false
			}
			if c := tr.CumulativeSuspects(tr.Len()).Count(); c > maxCum {
				maxCum = c
			}
		}
		t.AddRow(tc.n, tc.f, 10, seeds, maxCum, verdict(ok && maxCum <= tc.f))
	}
	t.AddNote("cumulative suspicion stays within f in every execution — the defining clause of eq.(1)")
	return t, nil
}

// E02CrashSubmodel validates §2 item 2: crash schedules satisfy
// eqs. (1)+(2), hence also plain eq. (1) — crash is an explicit submodel of
// send-omission — while omission schedules can violate the propagation
// clause (the separation).
func E02CrashSubmodel(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E02",
		Title:   "crash faults are a submodel of send-omission faults",
		Ref:     "§2 item 2",
		Columns: []string{"n", "f", "seeds", "crash-pred", "omission-pred", "omission⇏crash"},
	}
	seeds := seedsFor(quick, 40)
	for _, tc := range []struct{ n, f int }{{6, 2}, {8, 3}, {12, 5}} {
		crashOK, omitOK := true, true
		for seed := 0; seed < seeds; seed++ {
			tr, err := core.CollectTrace(tc.n, 12, adversary.Crash(tc.n, tc.f, int64(seed)))
			if err != nil {
				return nil, err
			}
			if predicate.SyncCrash(tc.f).Check(tr) != nil {
				crashOK = false
			}
			if predicate.SendOmission(tc.f).Check(tr) != nil {
				omitOK = false
			}
		}
		// Separation: an omission schedule whose suspicions do not
		// propagate (a victim suspected in one round, trusted in the
		// next).
		gen, genErr := captureGen(tc.n, func(seed int64) (*core.Trace, error) {
			return core.CollectTrace(tc.n, 12, adversary.Omission(tc.n, tc.f, 0.6, seed))
		})
		_, sepErr := predicate.Separates(gen, predicate.SendOmission(tc.f), predicate.SuspicionPropagates(), 100)
		if *genErr != nil {
			return nil, *genErr
		}
		t.AddRow(tc.n, tc.f, seeds, verdict(crashOK), verdict(omitOK), verdict(sepErr == nil))
	}
	t.AddNote("every crash execution is an omission execution; the converse fails — the submodel relation is strict")
	return t, nil
}

// E03AsyncRounds validates §2 item 3: the operational round-enforced
// asynchronous network induces exactly eq. (3), and the B system (two of
// whose rounds implement one round of A) is strictly weaker.
func E03AsyncRounds(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E03",
		Title:   "async message passing ≡ eq.(3); the B system strictly contains A",
		Ref:     "§2 item 3",
		Columns: []string{"system", "n", "f", "t", "seeds", "eq3", "B→A sim", "B⇏A"},
	}
	seeds := seedsFor(quick, 25)
	for _, tc := range []struct{ n, f int }{{4, 1}, {6, 2}, {8, 3}} {
		ok := true
		var steps int
		for seed := 0; seed < seeds; seed++ {
			out, err := msgnet.RunRounds(tc.n, tc.f, 6, msgnet.Config{Chooser: msgnet.Seeded(int64(seed))}, nil)
			if err != nil {
				return nil, err
			}
			if predicate.PerRoundBudget(tc.f).Check(out.Trace) != nil {
				ok = false
			}
			steps += out.Steps
		}
		t.AddRow("msgnet rounds", tc.n, tc.f, "-", seeds, verdict(ok), "-", "-")
	}
	// The B system: f < t, 2t < n.
	for _, tc := range []struct{ n, f, tt int }{{9, 2, 4}, {11, 3, 5}} {
		simOK, sepFound := true, false
		for seed := 0; seed < seeds; seed++ {
			base, err := core.CollectTrace(tc.n, 8, adversary.BSystemOracle(tc.n, tc.f, tc.tt, int64(seed)))
			if err != nil {
				return nil, err
			}
			sim, err := simulate.BToA(base, tc.f)
			if err != nil {
				return nil, err
			}
			if predicate.PerRoundBudget(tc.f).Check(sim) != nil {
				simOK = false
			}
			if predicate.PerRoundBudget(tc.f).Check(base) != nil {
				sepFound = true
			}
		}
		t.AddRow("B system", tc.n, tc.f, tc.tt, seeds, "-", verdict(simOK), verdict(sepFound))
	}
	t.AddNote("eq.(3) is therefore not the weakest RRFD for f-resilient asynchronous message passing")
	return t, nil
}

// E04SharedMemory validates §2 item 4: the 2f<n message-passing emulation
// yields eqs. (3)+(4); the no-mutual-miss alternative admits cycles that
// violate eq. (4); and the paper's information-propagation claims hold —
// under the no-mutual-miss predicate some process's round-1 value is known
// to all within n rounds (the paper conjectures 2 rounds suffice; the last
// column reports the worst case observed).
func E04SharedMemory(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E04",
		Title:   "SWMR shared memory ≡ eqs.(3)+(4); no-mutual-miss and the cycle conjecture",
		Ref:     "§2 item 4",
		Columns: []string{"part", "n", "f", "seeds", "result", "worst rounds-to-known-by-all"},
	}
	seeds := seedsFor(quick, 25)

	// Part 1: 2 message-passing rounds implement 1 shared-memory round.
	for _, tc := range []struct{ n, f int }{{5, 2}, {7, 3}, {9, 4}} {
		ok := true
		for seed := 0; seed < seeds; seed++ {
			out, err := msgnet.RunRounds(tc.n, tc.f, 6, msgnet.Config{Chooser: msgnet.Seeded(int64(seed))}, nil)
			if err != nil {
				return nil, err
			}
			sim, err := simulate.TwoRoundsToSharedMemory(out.Trace)
			if err != nil {
				return nil, err
			}
			if predicate.SharedMemory(tc.f).Check(sim) != nil {
				ok = false
			}
		}
		t.AddRow("2 MP rounds → 1 SM round", tc.n, tc.f, seeds, verdict(ok), "-")
	}

	// Part 2: the partition behaviour when 2f ≥ n.
	gen, genErr := captureGen(2, func(seed int64) (*core.Trace, error) {
		out, err := msgnet.RunRounds(2, 1, 3, msgnet.Config{Chooser: msgnet.Seeded(seed)}, nil)
		if err != nil {
			return nil, err
		}
		return out.Trace, nil
	})
	_, sepErr := predicate.Separates(gen, predicate.PerRoundBudget(1), predicate.SomeoneSeenByAll(), 100)
	if *genErr != nil {
		return nil, *genErr
	}
	t.AddRow("partition when 2f ≥ n", 2, 1, 100, verdict(sepErr == nil), "-")

	// Part 3: the cycle conjecture under the no-mutual-miss predicate.
	for _, tc := range []struct{ n, f int }{{5, 2}, {7, 3}, {9, 4}} {
		worst := 0
		for seed := 0; seed < seeds*4; seed++ {
			tr, err := core.CollectTrace(tc.n, tc.n+1, adversary.NoMutualMissOracle(tc.n, tc.f, int64(seed)))
			if err != nil {
				return nil, err
			}
			r, err := RoundsToKnownByAll(tr)
			if err != nil {
				return nil, err
			}
			if r > worst {
				worst = r
			}
		}
		t.AddRow("no-mutual-miss propagation", tc.n, tc.f, seeds*4, verdict(worst <= tc.n), worst)
	}
	t.AddNote("worst observed rounds-to-known-by-all bears on the paper's 2-round conjecture")
	return t, nil
}

// RoundsToKnownByAll computes the smallest r such that, running full
// information over the trace, some process's round-1 emission is known to
// every process: K(i,1) = S(i,1) ∪ {i}, K(i,r) = K(i,r−1) ∪ ⋃_{j∈S(i,r)}
// K(j,r−1). It returns an error if the trace ends before that happens.
func RoundsToKnownByAll(tr *core.Trace) (int, error) {
	n := tr.N
	know := make([]core.Set, n)
	for r := 1; r <= tr.Len(); r++ {
		rec := tr.Round(r)
		next := make([]core.Set, n)
		for i := 0; i < n; i++ {
			pid := core.PID(i)
			k := core.SetOf(n, pid)
			if r == 1 {
				k = k.Union(rec.Deliver[i])
			} else {
				k = k.Union(know[i])
				rec.Deliver[i].ForEach(func(j core.PID) {
					k = k.Union(know[j])
				})
			}
			next[i] = k
		}
		know = next
		common := core.FullSet(n)
		for i := 0; i < n; i++ {
			common = common.Intersect(know[i])
		}
		if !common.Empty() {
			return r, nil
		}
	}
	return 0, fmt.Errorf("exp: nobody known by all within %d rounds", tr.Len())
}

// E05Snapshot validates §2 item 5: the snapshot round protocol induces the
// atomic-snapshot predicate (budget + self-inclusion + containment chain).
func E05Snapshot(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E05",
		Title:   "atomic-snapshot rounds ≡ item 5 predicate",
		Ref:     "§2 item 5",
		Columns: []string{"n", "f", "rounds", "seeds", "crashes", "predicate"},
	}
	seeds := seedsFor(quick, 15)
	for _, tc := range []struct{ n, f, crashes int }{{4, 1, 0}, {5, 2, 1}, {8, 3, 2}} {
		ok := true
		for seed := 0; seed < seeds; seed++ {
			cfg := swmr.Config{Chooser: swmr.Seeded(int64(seed))}
			if tc.crashes > 0 {
				cfg.Crash = map[core.PID]int{}
				for c := 0; c < tc.crashes; c++ {
					cfg.Crash[core.PID(tc.n-1-c)] = 10 + 7*c
				}
			}
			out, err := snapshot.RunRounds(tc.n, tc.f, 4, cfg, nil)
			if err != nil {
				return nil, err
			}
			if predicate.AtomicSnapshot(tc.f).Check(out.Trace) != nil {
				ok = false
			}
		}
		t.AddRow(tc.n, tc.f, 4, seeds, tc.crashes, verdict(ok))
	}
	return t, nil
}
