package exp

import (
	"repro/internal/abd"
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/immediate"
	"repro/internal/msgnet"
	"repro/internal/predicate"
	"repro/internal/swmr"
	"repro/internal/view"
)

// X01FullInformation validates the paper's full-information machinery:
// §2 item 3's FIFO reconstruction (system A implements the non-round-based
// system N) and §2 item 4's emulated write operation (a completed write is
// visible to all in the subsequent round, under eqs. (3)+(4) — and fails
// without eq. (4)).
func X01FullInformation(quick bool) (*Table, error) {
	t := &Table{
		ID:      "X01",
		Title:   "full information: FIFO reconstruction and the emulated write",
		Ref:     "§2 items 3 and 4 (in-text constructions)",
		Columns: []string{"construction", "n", "f", "seeds", "result"},
	}
	seeds := seedsFor(quick, 30)

	inputs := func(n int) []core.Value {
		in := make([]core.Value, n)
		for i := range in {
			in[i] = i
		}
		return in
	}

	// FIFO reconstruction under eq. (3): every process's simulated
	// reception log must be FIFO per link with faithful payloads.
	for _, tc := range []struct{ n, f int }{{4, 2}, {6, 3}} {
		rs, err := sweep(seeds, func(seed int) (bool, error) {
			hist, _, err := view.RunHistory(tc.n, 6, inputs(tc.n),
				adversary.AsyncBudget(tc.n, tc.f, true, int64(seed)))
			if err != nil {
				return false, err
			}
			for p := core.PID(0); int(p) < tc.n; p++ {
				log, err := view.ReconstructFIFO(p, hist[p])
				if err != nil {
					return false, nil
				}
				if view.CheckFIFO(log) != nil {
					return false, nil
				}
			}
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		ok := true
		for _, r := range rs {
			ok = ok && r
		}
		t.AddRow("A implements N (FIFO recreation)", tc.n, tc.f, seeds, verdict(ok))
	}

	// Emulated write under eqs. (3)+(4): completion happens and the
	// subsequent-round visibility claim holds for every writer.
	for _, tc := range []struct{ n, f int }{{5, 2}, {7, 3}} {
		rs, err := sweep(seeds, func(seed int) (bool, error) {
			hist, _, err := view.RunHistory(tc.n, tc.n+2, inputs(tc.n),
				adversary.SharedMem(tc.n, tc.f, int64(seed)))
			if err != nil {
				return false, err
			}
			for w := core.PID(0); int(w) < tc.n; w++ {
				em, err := view.EmulateWrite(tc.n, w, hist)
				if err != nil || em.CompleteRound == 0 {
					return false, nil
				}
			}
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		ok := true
		for _, r := range rs {
			ok = ok && r
		}
		t.AddRow("emulated write (eqs. 3+4)", tc.n, tc.f, seeds, verdict(ok))
	}

	// Negative control: without eq. (4) the claim fails (a 2-process
	// partition).
	oracle := core.OracleFunc(func(r int, active core.Set) core.RoundPlan {
		return core.RoundPlan{Suspects: []core.Set{core.SetOf(2, 1), core.SetOf(2, 0)}}
	})
	hist, _, err := view.RunHistory(2, 4, inputs(2), oracle)
	if err != nil {
		return nil, err
	}
	_, emErr := view.EmulateWrite(2, 0, hist)
	t.AddRow("write fails without eq.(4)", 2, 1, 1, verdict(emErr != nil))
	t.AddNote("the emulated write needs eq.(4): the partition execution completes locally but is never visible")
	return t, nil
}

// X02ImmediateSnapshot validates the iterated immediate-snapshot model of
// reference [4] — the paper's credited origin: the one-shot object's three
// properties, the induced RRFD predicate, and its strict position below the
// §2 item 5 snapshot model in the lattice.
func X02ImmediateSnapshot(quick bool) (*Table, error) {
	t := &Table{
		ID:      "X02",
		Title:   "immediate snapshots: the iterated model of reference [4]",
		Ref:     "ref. [4] (Borowsky–Gafni), §6 related work",
		Columns: []string{"check", "n", "seeds/space", "result"},
	}
	seeds := seedsFor(quick, 20)

	for _, n := range []int{3, 5, 8} {
		rs, err := sweep(seeds, func(seed int) (bool, error) {
			out, err := immediate.RunRounds(n, 3, swmr.Config{Chooser: swmr.Seeded(int64(seed))}, nil)
			if err != nil {
				return false, err
			}
			return predicate.ImmediateSnapshot(n).Check(out.Trace) == nil, nil
		})
		if err != nil {
			return nil, err
		}
		ok := true
		for _, r := range rs {
			ok = ok && r
		}
		t.AddRow("IIS rounds satisfy the predicate", n, seeds, verdict(ok))
	}

	// Lattice position, proven exhaustively for n=3.
	_, satisfying, err := predicate.ExhaustiveImplies(3, 1,
		predicate.ImmediateSnapshot(3), predicate.AtomicSnapshot(2))
	if err != nil {
		return nil, err
	}
	t.AddRow("IIS ⇒ snapshot [proof]", 3, 343, verdict(satisfying > 0))
	_, witnesses, err := predicate.ExhaustiveWitnesses(3, 1,
		predicate.AtomicSnapshot(2), predicate.Immediacy())
	if err != nil {
		return nil, err
	}
	t.AddRow("snapshot ⇏ immediacy [census]", 3, witnesses, verdict(witnesses > 0))
	t.AddNote("IIS is a strict submodel of §2 item 5 — immediacy is the extra clause")
	return t, nil
}

// X03ABDRegister validates the Attiya–Bar-Noy–Dolev register emulation the
// paper cites as reference [22]: atomic reads/writes over asynchronous
// message passing with 2f < n, checked against real-time linearizability
// via the substrate's logical clock.
func X03ABDRegister(quick bool) (*Table, error) {
	t := &Table{
		ID:      "X03",
		Title:   "SWMR atomic register over message passing (ABD)",
		Ref:     "ref. [22], invoked by §2 item 4",
		Columns: []string{"n", "f", "crashes", "seeds", "ops checked", "atomicity"},
	}
	seeds := seedsFor(quick, 20)
	for _, tc := range []struct{ n, f, crashes int }{
		{3, 1, 0}, {5, 2, 0}, {5, 2, 2}, {7, 3, 2},
	} {
		type abdStat struct {
			ok  bool
			ops int
		}
		rs, err := sweep(seeds, func(seed int) (abdStat, error) {
			cfg := msgnet.Config{Chooser: msgnet.Seeded(int64(seed))}
			if tc.crashes > 0 {
				cfg.Crash = map[core.PID]int{}
				for c := 0; c < tc.crashes; c++ {
					cfg.Crash[core.PID(tc.n-1-c)] = 20 + seed + 13*c
				}
			}
			out, err := abd.Run(tc.n, tc.f, cfg, func(r *abd.Register) error {
				if r.Writer() {
					for k := 1; k <= 3; k++ {
						if err := r.Write(k * 10); err != nil {
							return err
						}
					}
					return nil
				}
				for k := 0; k < 3; k++ {
					if _, err := r.Read(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return abdStat{}, err
			}
			return abdStat{
				ok:  abd.CheckAtomic(out.Log) == nil,
				ops: len(out.Log),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		ok := true
		ops := 0
		for _, s := range rs {
			ok = ok && s.ok
			ops += s.ops
		}
		t.AddRow(tc.n, tc.f, tc.crashes, seeds, ops, verdict(ok))
	}
	t.AddNote("quorum intersection (2f < n) is the operational face of the E04 two-round emulation")
	return t, nil
}
