package exp

import (
	"errors"
	"fmt"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/swmr"
)

// X04Ablations validates that the design choices the paper's constructions
// make are load-bearing, by breaking each one and exhibiting the failure:
//
//   - adopt-commit's SECOND phase: a one-phase variant ("commit iff the
//     collected proposals are unanimous") violates the agreement property
//     under real schedules — found by exhaustive exploration;
//   - Theorem 3.1's detector bound: loosening |⋃D \ ⋂D| < k to < k+1
//     admits executions where the one-round algorithm outputs k+1 values —
//     found by exhaustive trace enumeration;
//   - FloodMin's round count: one round below ⌊f/k⌋+1 fails (E13);
//   - the snapshot scan's helping path: without it the scan is only
//     obstruction-free (snapshot ablation tests/benchmarks).
func X04Ablations(quick bool) (*Table, error) {
	t := &Table{
		ID:      "X04",
		Title:   "ablations: each construction ingredient is load-bearing",
		Ref:     "§3, §4.2 design choices",
		Columns: []string{"ablation", "search", "witnesses", "result"},
	}

	// The two exhaustive searches are independent, so they fan out like a
	// two-seed sweep. Each returns (search-space size, witness count).
	type ablStat struct{ space, hits int }

	// 1. One-phase adopt-commit breaks agreement. The witness shape:
	// p0 collects {1,⊥} and commits 1 while p1 collects {1,2} and adopts
	// its own 2.
	onePhase := func() (ablStat, error) {
		violations := 0
		count, err := swmr.Explore(100000, func(ch swmr.Chooser) error {
			inputs := []core.Value{1, 2}
			res, err := swmr.Run(2, swmr.Config{Chooser: ch}, func(p *swmr.Proc) (core.Value, error) {
				return onePhaseAdoptCommit(p, inputs[p.Me])
			})
			if err != nil {
				return err
			}
			var committed core.Value
			hasCommit := false
			for _, v := range res.Values {
				o := v.(onePhaseOutcome)
				if o.commit {
					hasCommit, committed = true, o.value
				}
			}
			if hasCommit {
				for _, v := range res.Values {
					if v.(onePhaseOutcome).value != committed {
						violations++
						break
					}
				}
			}
			return nil
		})
		var limit *swmr.ExploreLimitError
		switch {
		case errors.As(err, &limit):
			// The structured limit error carries the schedules that ran,
			// so a truncated search still reports its explored space.
			count = limit.Schedules
		case err != nil:
			return ablStat{}, err
		}
		return ablStat{space: count, hits: violations}, nil
	}

	// 2. Theorem 3.1's bound is tight: under detector budget k+1 the
	// algorithm must fail somewhere. Exhaustive over n=3, k=1: find a
	// KSetDetector(2) trace with 2 distinct outputs (> k = 1).
	looseDetector := func() (ablStat, error) {
		n, k := 3, 1
		loose := predicate.KSetDetector(k + 1)
		strict := predicate.KSetDetector(k)
		witnesses := 0
		err := predicate.ExhaustiveTraces(n, 1, func(tr *core.Trace) error {
			if loose.Check(tr) != nil || strict.Check(tr) == nil {
				return nil // outside the loosened-but-not-strict band
			}
			res, err := core.Run(n, identityInputs(n), agreement.OneRoundKSet(),
				core.TraceOracle(tr), core.WithoutTrace())
			if err != nil {
				return err
			}
			if res.DistinctOutputs() > k {
				witnesses++
			}
			return nil
		})
		if err != nil {
			return ablStat{}, err
		}
		return ablStat{space: 343, hits: witnesses}, nil
	}

	searches := []func() (ablStat, error){onePhase, looseDetector}
	rs, err := sweep(len(searches), func(i int) (ablStat, error) { return searches[i]() })
	if err != nil {
		return nil, err
	}
	t.AddRow("adopt-commit without phase 2", fmt.Sprintf("exhaustive, %d schedules", rs[0].space),
		rs[0].hits, verdict(rs[0].hits > 0))
	t.AddRow("one-round k-set with detector bound k+1", "exhaustive n=3, 343 traces",
		rs[1].hits, verdict(rs[1].hits > 0))

	// 3 and 4 live where their machinery is; record the pointers.
	t.AddRow("FloodMin one round short", "see E13", "k+1 values", "ok")
	t.AddRow("snapshot scan without helping", "see internal/snapshot ablation tests", "starvation", "ok")
	t.AddNote("every broken variant fails observably; the constructions' ingredients are all necessary")
	return t, nil
}

// onePhaseOutcome is the ablated protocol's output.
type onePhaseOutcome struct {
	commit bool
	value  core.Value
}

// onePhaseAdoptCommit is the BROKEN variant: write, collect, grade — no
// second array, no second collect.
func onePhaseAdoptCommit(p *swmr.Proc, v core.Value) (core.Value, error) {
	if err := p.Write("abl1", v); err != nil {
		return nil, err
	}
	seen, err := p.Collect("abl1")
	if err != nil {
		return nil, err
	}
	unanimous := true
	for _, s := range seen {
		if s != swmr.Bottom && s != v {
			unanimous = false
		}
	}
	return onePhaseOutcome{commit: unanimous, value: v}, nil
}
