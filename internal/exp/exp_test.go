package exp

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
)

// TestAllExperimentsPass runs every experiment in quick mode and requires
// every verdict cell to be "ok" — this is the repository's end-to-end claim
// that all paper results reproduce.
func TestAllExperimentsPass(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			table, err := r.Run(true)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if table.ID != r.ID {
				t.Fatalf("table ID %q, runner ID %q", table.ID, r.ID)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", r.ID)
			}
			for _, row := range table.Rows {
				for _, cell := range row {
					if cell == "VIOLATED" {
						t.Fatalf("%s has a violated verdict:\n%v", r.ID, table.Rows)
					}
				}
			}
		})
	}
}

func TestTableFprint(t *testing.T) {
	tb := &Table{
		ID:      "EXX",
		Title:   "demo",
		Ref:     "§0",
		Columns: []string{"a", "bb"},
	}
	tb.AddRow(1, "x")
	tb.AddNote("n=%d", 7)
	var b strings.Builder
	tb.Fprint(&b)
	out := b.String()
	for _, want := range []string{"EXX", "demo", "a", "bb", "1", "x", "note: n=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRoundsToKnownByAll(t *testing.T) {
	// Benign execution: everyone known to all at round 1.
	tr, err := core.CollectTrace(4, 3, adversary.Benign(4))
	if err != nil {
		t.Fatal(err)
	}
	r, err := RoundsToKnownByAll(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("benign rounds-to-known = %d, want 1", r)
	}
	// A trace that is all miss-cycles for its whole (short) length can
	// fail to converge — the error path.
	short := core.NewTrace(3)
	rec := core.RoundRecord{
		R:        1,
		Suspects: []core.Set{core.SetOf(3, 1), core.SetOf(3, 2), core.SetOf(3, 0)},
		Deliver:  []core.Set{core.SetOf(3, 0, 2), core.SetOf(3, 1, 0), core.SetOf(3, 2, 1)},
		Active:   core.FullSet(3),
		Crashed:  core.NewSet(3),
	}
	short.Append(rec)
	if _, err := RoundsToKnownByAll(short); err == nil {
		t.Fatal("pure cycle round must not converge in one round")
	}
}

func TestVerdictAndSeeds(t *testing.T) {
	if verdict(true) != "ok" || verdict(false) != "VIOLATED" {
		t.Fatal("verdict broken")
	}
	if seedsFor(true, 100) != 8 || seedsFor(false, 100) != 100 || seedsFor(true, 5) != 5 {
		t.Fatal("seedsFor broken")
	}
}
