package exp

import (
	"errors"

	"repro/internal/adoptcommit"
	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/simulate"
	"repro/internal/swmr"
)

// E10OmissionSim validates Theorem 4.1: the first ⌊f/k⌋ rounds of an
// atomic-snapshot execution with budget k form a legal synchronous
// send-omission execution with budget f.
func E10OmissionSim(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "synchronous omission rounds from asynchronous snapshots",
		Ref:     "Theorem 4.1",
		Columns: []string{"n", "f", "k", "⌊f/k⌋", "seeds", "max|∪∪D|", "eq1(f)"},
	}
	seeds := seedsFor(quick, 40)
	for _, tc := range []struct{ n, f, k int }{
		{6, 3, 1}, {8, 4, 2}, {8, 5, 2}, {10, 6, 3}, {12, 9, 3},
	} {
		rounds := tc.f / tc.k
		type simStat struct {
			ok  bool
			cum int
		}
		rs, err := sweep(seeds, func(seed int) (simStat, error) {
			base, err := core.CollectTrace(tc.n, rounds+2, adversary.SnapshotChain(tc.n, tc.k, int64(seed)))
			if err != nil {
				return simStat{}, err
			}
			sim, err := simulate.OmissionPrefix(base, tc.f, tc.k)
			if err != nil {
				return simStat{}, err
			}
			return simStat{
				ok:  predicate.SendOmission(tc.f).Check(sim) == nil,
				cum: sim.CumulativeSuspects(sim.Len()).Count(),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		maxCum, ok := 0, true
		for _, s := range rs {
			ok = ok && s.ok
			if s.cum > maxCum {
				maxCum = s.cum
			}
		}
		t.AddRow(tc.n, tc.f, tc.k, rounds, seeds, maxCum, verdict(ok && maxCum <= tc.f))
	}
	t.AddNote("per-round budget k over ⌊f/k⌋ rounds accumulates to ≤ f — the whole content of the reduction")
	return t, nil
}

// E11AdoptCommit validates the §4.2 protocol: exhaustive model checking for
// two processes (all schedules × all crash points), and seeded sweeps for
// larger systems; plus the wait-free operation count 2n+2.
func E11AdoptCommit(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "adopt-commit protocol correctness",
		Ref:     "§4.2",
		Columns: []string{"mode", "n", "schedules/seeds", "violations", "ops/proc", "verdict"},
	}

	check := func(inputs []core.Value, cfg swmr.Config) error {
		outs := make(map[core.PID]adoptcommit.Outcome)
		res, err := swmr.Run(len(inputs), cfg, func(p *swmr.Proc) (core.Value, error) {
			return adoptcommit.Run(p, "x", inputs[p.Me])
		})
		if err != nil {
			return err
		}
		for pid, e := range res.Errs {
			if !errors.Is(e, swmr.ErrCrashed) {
				return e
			}
			_ = pid
		}
		for pid, v := range res.Values {
			outs[pid] = v.(adoptcommit.Outcome)
		}
		return checkACProperties(inputs, outs)
	}

	// Exhaustive, two processes, contested inputs, every crash point. The
	// eight crash points are independent state-space explorations, so they
	// fan out like a seed sweep (index i is crash point i-1).
	inputs := []core.Value{1, 2}
	type exploreStat struct {
		count    int
		violated bool
	}
	exps, err := sweep(8, func(i int) (exploreStat, error) {
		crashAt := i - 1
		cfg := swmr.Config{}
		if crashAt >= 0 {
			cfg.Crash = map[core.PID]int{0: crashAt}
		}
		count, err := swmr.Explore(200000, func(ch swmr.Chooser) error {
			c := cfg
			c.Chooser = ch
			return check(inputs, c)
		})
		var limit *swmr.ExploreLimitError
		if errors.As(err, &limit) {
			// Truncated searches report the schedules that did run.
			return exploreStat{count: limit.Schedules}, nil
		}
		return exploreStat{count: count, violated: err != nil}, nil
	})
	if err != nil {
		return nil, err
	}
	total, violations := 0, 0
	for _, e := range exps {
		total += e.count
		if e.violated {
			violations++
		}
	}
	t.AddRow("exhaustive n=2 (+crash sweep)", 2, total, violations, 2*2+2, verdict(violations == 0))

	// Seeded sweeps for larger systems.
	seeds := seedsFor(quick, 200)
	for _, n := range []int{3, 4, 6} {
		rs, err := sweep(seeds, func(seed int) (bool, error) {
			in := make([]core.Value, n)
			for i := range in {
				in[i] = (seed + i*i) % 3
			}
			return check(in, swmr.Config{Chooser: swmr.Seeded(int64(seed))}) != nil, nil
		})
		if err != nil {
			return nil, err
		}
		bad := 0
		for _, b := range rs {
			if b {
				bad++
			}
		}
		t.AddRow("seeded", n, seeds, bad, 2*n+2, verdict(bad == 0))
	}
	return t, nil
}

// checkACProperties verifies the adopt-commit contract on live outcomes.
func checkACProperties(inputs []core.Value, outs map[core.PID]adoptcommit.Outcome) error {
	inputSet := make(map[core.Value]bool)
	allSame := true
	for _, v := range inputs {
		inputSet[v] = true
		if v != inputs[0] {
			allSame = false
		}
	}
	for _, o := range outs {
		if !inputSet[o.Value] {
			return errors.New("output is not a proposal")
		}
	}
	if allSame {
		for _, o := range outs {
			if o.Grade != adoptcommit.Commit {
				return errors.New("unanimous proposals must commit")
			}
		}
	}
	for _, o := range outs {
		if o.Grade != adoptcommit.Commit {
			continue
		}
		for _, o2 := range outs {
			if o2.Value != o.Value {
				return errors.New("a commit must force all values")
			}
		}
	}
	return nil
}

// E12CrashSim validates Theorem 4.3: the crash-fault simulation is sound
// (the induced trace satisfies eqs. 1+2 with budget f) and preserves the
// FloodMin guarantee (≤ k+1 distinct decisions over ⌊f/k⌋ rounds), at the
// cost of one snapshot round plus n adopt-commits per simulated round.
func E12CrashSim(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "synchronous crash rounds from asynchronous snapshots",
		Ref:     "Theorem 4.3",
		Columns: []string{"n", "f", "k", "rounds", "real crashes", "seeds", "trace", "≤k+1 distinct", "steps/round"},
	}
	seeds := seedsFor(quick, 12)
	for _, tc := range []struct{ n, f, k, crashes int }{
		{5, 2, 2, 0}, {6, 4, 2, 0}, {6, 4, 2, 1}, {7, 3, 3, 2},
	} {
		rounds := tc.f / tc.k
		type crashStat struct {
			traceOK, agreeOK bool
			steps            int
		}
		rs, err := sweep(seeds, func(seed int) (crashStat, error) {
			cfg := swmr.Config{Chooser: swmr.Seeded(int64(seed))}
			if tc.crashes > 0 {
				cfg.Crash = map[core.PID]int{}
				for c := 0; c < tc.crashes; c++ {
					cfg.Crash[core.PID(tc.n-1-c)] = 15 + seed + 11*c
				}
			}
			res, err := simulate.CrashSync(tc.n, tc.f, tc.k, rounds, cfg,
				agreement.FloodMin(rounds), identityInputs(tc.n))
			if err != nil {
				return crashStat{}, err
			}
			return crashStat{
				traceOK: predicate.SyncCrash(tc.f).Check(res.Result.Trace) == nil,
				agreeOK: agreement.Validate(res.Result, identityInputs(tc.n), tc.k+1, rounds) == nil,
				steps:   res.Steps,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		traceOK, agreeOK := true, true
		var steps int
		for _, s := range rs {
			traceOK = traceOK && s.traceOK
			agreeOK = agreeOK && s.agreeOK
			steps += s.steps
		}
		t.AddRow(tc.n, tc.f, tc.k, rounds, tc.crashes, seeds,
			verdict(traceOK), verdict(agreeOK), steps/(seeds*rounds))
	}
	t.AddNote("each simulated round costs 3 asynchronous rounds: one snapshot exchange plus the two adopt-commit phases")
	return t, nil
}

// E13LowerBound validates Corollaries 4.2/4.4: FloodMin meets the
// ⌊f/k⌋+1 bound exactly against the chain adversary, truncating it one
// round short yields exactly k+1 distinct values, and the staircase
// schedule realizes the same violation through the full Theorem 4.3
// machinery with zero real crashes.
func E13LowerBound(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "the ⌊f/k⌋+1 synchronous lower bound for k-set agreement",
		Ref:     "Corollaries 4.2 and 4.4",
		Columns: []string{"witness", "n", "f", "k", "rounds", "distinct", "verdict"},
	}
	for _, tc := range []struct{ n, f, k int }{
		{8, 3, 1}, {10, 4, 2}, {14, 6, 3}, {12, 5, 2},
	} {
		full := tc.f/tc.k + 1
		res, err := core.Run(tc.n, identityInputs(tc.n), agreement.FloodMin(full),
			adversary.ChainCrash(tc.n, tc.f, tc.k))
		if err != nil {
			return nil, err
		}
		okFull := agreement.Validate(res, identityInputs(tc.n), tc.k, full) == nil
		t.AddRow("chain, ⌊f/k⌋+1 rounds", tc.n, tc.f, tc.k, full, res.DistinctOutputs(), verdict(okFull))

		trunc, err := core.Run(tc.n, identityInputs(tc.n), agreement.FloodMin(tc.f/tc.k),
			adversary.ChainCrash(tc.n, tc.f, tc.k))
		if err != nil {
			return nil, err
		}
		// The violation is the POSITIVE result here.
		t.AddRow("chain, ⌊f/k⌋ rounds", tc.n, tc.f, tc.k, tc.f/tc.k, trunc.DistinctOutputs(),
			verdict(trunc.DistinctOutputs() == tc.k+1))
	}

	// The asynchronous witness through Theorem 4.3 (no real crashes).
	n, f, k := 4, 2, 2
	chooser := swmr.PriorityGroups([]core.PID{2, 3}, []core.PID{1}, []core.PID{0})
	res, err := simulate.CrashSync(n, f, k, f/k, swmr.Config{Chooser: chooser},
		agreement.FloodMin(f/k), identityInputs(n))
	if err != nil {
		return nil, err
	}
	t.AddRow("staircase via Thm 4.3", n, f, k, f/k, res.Result.DistinctOutputs(),
		verdict(res.Result.DistinctOutputs() == k+1 && res.RealCrashes.Empty()))
	t.AddNote("a ⌊f/k⌋-round algorithm would give k-resilient async k-set agreement — impossible (BG/HS/SZ)")
	return t, nil
}
