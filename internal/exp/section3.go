package exp

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/predicate"
	"repro/internal/snapshot"
	"repro/internal/swmr"
)

func identityInputs(n int) []core.Value {
	inputs := make([]core.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	return inputs
}

// E06ConsensusS validates §2 item 6: under the RRFD with some process never
// suspected (the counterpart of failure detector S), the rotating-
// coordinator algorithm solves consensus wait-free in n rounds — both under
// the abstract adversary and under histories of a classical S detector.
func E06ConsensusS(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E06",
		Title:   "consensus under the detector-S RRFD (wait-free, n rounds)",
		Ref:     "§2 item 6",
		Columns: []string{"source", "n", "seeds", "agreement", "max round"},
	}
	seeds := seedsFor(quick, 20)
	type seedStat struct {
		ok       bool
		maxRound int
	}
	for _, n := range []int{4, 7, 10} {
		rs, err := sweep(seeds, func(seed int) (seedStat, error) {
			spare := core.PID(seed % n)
			res, err := core.Run(n, identityInputs(n), agreement.RotatingCoordinator(),
				adversary.SpareNeverSuspected(n, spare, int64(seed)))
			if err != nil {
				return seedStat{}, err
			}
			return seedStat{
				ok:       agreement.Validate(res, identityInputs(n), 1, n) == nil,
				maxRound: res.MaxDecisionRound(),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		ok, maxRound := true, 0
		for _, s := range rs {
			ok = ok && s.ok
			if s.maxRound > maxRound {
				maxRound = s.maxRound
			}
		}
		t.AddRow("RRFD adversary", n, seeds, verdict(ok), maxRound)
	}
	// The same algorithm driven by a classical S detector history (the
	// item-6 construction: D(i,r) is the detector output that lets p_i
	// finish round r).
	for _, n := range []int{4, 7} {
		rs, err := sweep(seeds, func(seed int) (seedStat, error) {
			spare := core.PID(seed % n)
			base, err := core.CollectTrace(n, n, adversary.SpareNeverSuspected(n, spare, int64(seed)+999))
			if err != nil {
				return seedStat{}, err
			}
			h := detector.FromTrace(base)
			if err := h.CheckWeakAccuracy(); err != nil {
				return seedStat{}, err
			}
			res, err := core.Run(n, identityInputs(n), agreement.RotatingCoordinator(), detector.Oracle(h))
			if err != nil {
				return seedStat{}, err
			}
			return seedStat{
				ok:       agreement.Validate(res, identityInputs(n), 1, n) == nil,
				maxRound: res.MaxDecisionRound(),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		ok, maxRound := true, 0
		for _, s := range rs {
			ok = ok && s.ok
			if s.maxRound > maxRound {
				maxRound = s.maxRound
			}
		}
		t.AddRow("classical S history", n, seeds, verdict(ok), maxRound)
	}
	// The eventual-accuracy extension (◇S analogue, §7 programme): the
	// rotating coordinator is unsafe when accuracy only holds eventually;
	// the adopt-commit-based phased consensus (ref. [16]) stays safe and
	// live.
	for _, n := range []int{5, 7} {
		f := (n - 1) / 2
		stab := 6
		rs, err := sweep(seeds, func(seed int) (bool, error) {
			spare := core.PID(seed % n)
			res, err := core.Run(n, identityInputs(n), agreement.PhasedConsensus(),
				adversary.EventuallySpare(n, f, stab, spare, int64(seed)),
				core.WithMaxRounds(stab+3*(n+2)))
			if err != nil {
				return false, err
			}
			return agreement.Validate(res, identityInputs(n), 1, 0) == nil, nil
		})
		if err != nil {
			return nil, err
		}
		ok := true
		for _, s := range rs {
			ok = ok && s
		}
		t.AddRow("eventual-S, phased consensus", n, seeds, verdict(ok), stab+3*(n+2))
	}
	t.AddNote("the predicate equals eq.(1)'s budget clause with f = n−1 — see E15 for the equivalence check")
	t.AddNote("eventual-accuracy rows extend the paper per its §7 programme; see internal/agreement/phased.go")
	return t, nil
}

// E07OneRoundKSet validates Theorem 3.1: k-set agreement in exactly one
// round under the detector |⋃D \ ⋂D| < k, across hostile sweeps.
func E07OneRoundKSet(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E07",
		Title:   "one-round k-set agreement under the §3 detector",
		Ref:     "Theorem 3.1",
		Columns: []string{"n", "k", "seeds", "max distinct", "bound k", "round", "verdict"},
	}
	seeds := seedsFor(quick, 200)
	for _, tc := range []struct{ n, k int }{
		{6, 1}, {8, 2}, {12, 3}, {16, 4}, {24, 6}, {32, 8},
	} {
		type kStat struct {
			ok               bool
			distinct, rounds int
		}
		rs, err := sweep(seeds, func(seed int) (kStat, error) {
			res, err := core.Run(tc.n, identityInputs(tc.n), agreement.OneRoundKSet(),
				adversary.KSetUncertainty(tc.n, tc.k, int64(seed)))
			if err != nil {
				return kStat{}, err
			}
			return kStat{
				ok:       agreement.Validate(res, identityInputs(tc.n), tc.k, 1) == nil,
				distinct: res.DistinctOutputs(),
				rounds:   res.Rounds,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		maxDistinct, rounds, ok := 0, 0, true
		for _, s := range rs {
			ok = ok && s.ok
			if s.distinct > maxDistinct {
				maxDistinct = s.distinct
			}
			if s.rounds > rounds {
				rounds = s.rounds
			}
		}
		t.AddRow(tc.n, tc.k, seeds, maxDistinct, tc.k, rounds, verdict(ok))
	}
	// Exhaustive PROOF for tiny universes: every 1-round detector
	// behaviour satisfying the predicate, with the algorithm run against
	// each.
	proofCases := []struct{ n, k int }{{3, 1}, {3, 2}, {4, 2}}
	for _, pc := range proofCases {
		pred := predicate.KSetDetector(pc.k)
		satisfying := 0
		err := predicate.ExhaustiveTraces(pc.n, 1, func(tr *core.Trace) error {
			if pred.Check(tr) != nil {
				return nil
			}
			satisfying++
			res, err := core.Run(pc.n, identityInputs(pc.n), agreement.OneRoundKSet(),
				core.TraceOracle(tr), core.WithoutTrace())
			if err != nil {
				return err
			}
			return agreement.Validate(res, identityInputs(pc.n), pc.k, 1)
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(pc.n, pc.k, fmt.Sprintf("proof:%d traces", satisfying), pc.k, pc.k, 1, verdict(satisfying > 0))
	}
	t.AddNote("compare the synchronous route: ⌊f/k⌋+1 rounds (E13) — the detector collapses it to one round")
	t.AddNote("proof rows run the algorithm against EVERY legal detector behaviour of the tiny universe")
	return t, nil
}

// E08KSetSharedMem validates Corollary 3.2 operationally: one snapshot
// round with f = k−1 real crash failures solves k-set agreement (decide the
// value of the smallest identifier present in the deciding scan).
func E08KSetSharedMem(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E08",
		Title:   "k-set agreement with k−1 crashes on the snapshot substrate",
		Ref:     "Corollary 3.2",
		Columns: []string{"n", "k", "crashes", "seeds", "max distinct", "verdict"},
	}
	seeds := seedsFor(quick, 40)
	for _, tc := range []struct{ n, k int }{{5, 1}, {6, 2}, {8, 3}, {9, 4}} {
		crashes := tc.k - 1
		rs, err := sweep(seeds, func(seed int) (int, error) {
			cfg := swmr.Config{Chooser: swmr.Seeded(int64(seed))}
			if crashes > 0 {
				cfg.Crash = map[core.PID]int{}
				for c := 0; c < crashes; c++ {
					// Vary the crash points with the seed for coverage.
					cfg.Crash[core.PID(tc.n-1-c)] = (seed*7 + c*13) % 40
				}
			}
			emit := func(me core.PID, r int, _ map[core.PID]core.Value, _ core.Set) core.Value {
				return int(me) // the task input
			}
			out, err := snapshot.RunRounds(tc.n, crashes, 1, cfg, emit)
			if err != nil {
				return 0, err
			}
			distinct := make(map[core.Value]bool)
			for _, views := range out.Views {
				if len(views) < 1 {
					continue // crashed before completing the round
				}
				// Theorem 3.1 rule: the smallest identifier present.
				best := core.PID(-1)
				for from := range views[0] {
					if best < 0 || from < best {
						best = from
					}
				}
				distinct[views[0][best]] = true
			}
			return len(distinct), nil
		})
		if err != nil {
			return nil, err
		}
		maxDistinct, ok := 0, true
		for _, d := range rs {
			if d > tc.k {
				ok = false
			}
			if d > maxDistinct {
				maxDistinct = d
			}
		}
		t.AddRow(tc.n, tc.k, crashes, seeds, maxDistinct, verdict(ok))
	}
	t.AddNote("the snapshot predicate with budget k−1 implies the §3 detector (E15), so one round suffices")
	return t, nil
}

// E09DetectorFromKSet validates Theorem 3.3: a system with a k-set-consensus
// object and SWMR memory implements the §3 detector. The construction runs
// on the swmr substrate with the object provided as a linearizable oracle.
func E09DetectorFromKSet(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E09",
		Title:   "implementing the §3 detector from a k-set-consensus object",
		Ref:     "Theorem 3.3",
		Columns: []string{"n", "k", "rounds", "seeds", "max uncertainty", "detector pred"},
	}
	seeds := seedsFor(quick, 25)
	for _, tc := range []struct{ n, k int }{{4, 1}, {5, 2}, {7, 3}} {
		type uncStat struct {
			ok     bool
			maxUnc int
		}
		rs, err := sweep(seeds, func(seed int) (uncStat, error) {
			tr, err := DetectorFromKSet(tc.n, tc.k, 3, swmr.Config{Chooser: swmr.Seeded(int64(seed))})
			if err != nil {
				return uncStat{}, err
			}
			s := uncStat{ok: predicate.KSetDetector(tc.k).Check(tr) == nil}
			for r := 1; r <= tr.Len(); r++ {
				if unc := tr.SuspectUnion(r).Diff(tr.SuspectIntersection(r)).Count(); unc > s.maxUnc {
					s.maxUnc = unc
				}
			}
			return s, nil
		})
		if err != nil {
			return nil, err
		}
		maxUnc, ok := 0, true
		for _, s := range rs {
			ok = ok && s.ok
			if s.maxUnc > maxUnc {
				maxUnc = s.maxUnc
			}
		}
		t.AddRow(tc.n, tc.k, 3, seeds, maxUnc, verdict(ok && maxUnc < tc.k))
	}
	// Staircase schedules make the uncertainty bite: an early process
	// reads the chosen registers before the stragglers write, so the
	// suspect sets genuinely differ — but still by fewer than k.
	for _, tc := range []struct{ n, k int }{{4, 2}, {5, 3}} {
		groups := make([][]core.PID, tc.n)
		for i := 0; i < tc.n; i++ {
			groups[i] = []core.PID{core.PID(i)}
		}
		tr, err := DetectorFromKSet(tc.n, tc.k, 1, swmr.Config{Chooser: swmr.PriorityGroups(groups...)})
		if err != nil {
			return nil, err
		}
		if err := predicate.KSetDetector(tc.k).Check(tr); err != nil {
			return nil, err
		}
		unc := tr.SuspectUnion(1).Diff(tr.SuspectIntersection(1)).Count()
		t.AddRow(tc.n, tc.k, 1, "staircase", unc, verdict(unc == tc.k-1))
	}
	t.AddNote("staircase rows attain the k−1 uncertainty maximum — the detector bound is tight")
	return t, nil
}

// DetectorFromKSet runs the Theorem 3.3 construction for rounds rounds and
// returns the induced RRFD trace. Per round, each process: writes its round
// value, proposes its identifier to a k-set-consensus oracle, writes the
// chosen identifier to its cell, reads everyone's cells, and takes
// D(i,r) = S − Q where Q is the set of chosen identifiers it read. All
// suspect sets then differ only on chosen identifiers (at most k), and the
// first-written choice is read by everyone, so |⋃D \ ⋂D| ≤ k−1 < k.
func DetectorFromKSet(n, k, rounds int, cfg swmr.Config) (*core.Trace, error) {
	type rec struct{ dsets []core.Set }
	recs := make([]*rec, n)
	_, err := swmr.Run(n, cfg, func(p *swmr.Proc) (core.Value, error) {
		r0 := &rec{}
		recs[p.Me] = r0
		for r := 1; r <= rounds; r++ {
			if err := p.Write(fmt.Sprintf("val:%d", r), int(p.Me)*1000+r); err != nil {
				return nil, err
			}
			// The assumed k-set-consensus object: it stores the first k
			// proposals; a proposer whose value made it in gets its own
			// value back, later proposers get the first stored one. Any
			// such rule is a valid k-set object (≤ k distinct outputs,
			// all of them proposals) — this one maximizes disagreement,
			// probing the theorem's bound.
			chosen, err := p.Atomic(fmt.Sprintf("kset:%d", r), func(state core.Value) (core.Value, core.Value) {
				stored, _ := state.([]core.Value)
				if len(stored) < k {
					stored = append(stored, core.Value(p.Me))
					return stored, core.Value(p.Me)
				}
				return stored, stored[0]
			})
			if err != nil {
				return nil, err
			}
			if err := p.Write(fmt.Sprintf("chosen:%d", r), chosen); err != nil {
				return nil, err
			}
			cells, err := p.Collect(fmt.Sprintf("chosen:%d", r))
			if err != nil {
				return nil, err
			}
			q := core.NewSet(n)
			for _, c := range cells {
				if id, ok := c.(core.PID); ok {
					q.Add(id)
				}
			}
			r0.dsets = append(r0.dsets, q.Complement())
		}
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	tr := core.NewTrace(n)
	for r := 1; r <= rounds; r++ {
		rr := core.RoundRecord{
			R:        r,
			Suspects: make([]core.Set, n),
			Deliver:  make([]core.Set, n),
			Active:   core.FullSet(n),
			Crashed:  core.NewSet(n),
		}
		for i := 0; i < n; i++ {
			rr.Suspects[i] = recs[i].dsets[r-1]
			rr.Deliver[i] = recs[i].dsets[r-1].Complement()
		}
		tr.Append(rr)
	}
	return tr, nil
}
