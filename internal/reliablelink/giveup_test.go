package reliablelink

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/msgnet"
)

// TestGiveUpDegradesIntoSuspicion exercises the interaction the give-up
// path (rlink.giveup) had no coverage for: when MaxAttempts exhausts the
// retransmission budget toward an unreachable peer, the abandoned frames
// must surface as a round-watchdog suspicion — a D(i,r) entry in the
// trace — and the execution must terminate cleanly, not stall or
// deadlock.
func TestGiveUpDegradesIntoSuspicion(t *testing.T) {
	const n, f, rounds = 3, 1, 2
	// p1 is islanded for the whole run: every frame crossing the cut is
	// dropped, so retransmissions toward (and from) p1 are pure loss.
	plan := faultnet.Plan{Seed: 1, Components: []faultnet.Component{{
		Kind:   faultnet.Partition,
		Groups: [][]core.PID{{0, 2}, {1}},
		Name:   "island-p1",
	}}}
	out, rep, err := RunRounds(n, f, rounds, RoundsConfig{
		Net: msgnet.Config{Chooser: msgnet.Seeded(11), Faults: plan.Injector()},
		// A tight budget so frames are given up well before the watchdog.
		Link:          Config{RetransmitAfter: 4, RetransmitCap: 8, MaxAttempts: 2},
		WatchdogSteps: 600,
		LingerSteps:   200,
	}, nil)
	if err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if rep.GiveUps == 0 {
		t.Fatal("expected frames to be given up across the partition")
	}
	if !rep.Stalled() {
		t.Fatal("expected the islanded rounds to stall into the watchdog")
	}
	// p1 heard nobody: every round it completed must suspect exactly
	// {0, 2} — the give-ups degraded into suspicions, not a hang.
	sawIsland := false
	for _, s := range rep.Stalls {
		if s.P == 1 {
			sawIsland = true
			if len(s.Missing) != 2 || s.Missing[0] != 0 || s.Missing[1] != 2 {
				t.Fatalf("p1 stall missing %v, want [0 2]", s.Missing)
			}
		}
	}
	if !sawIsland {
		t.Fatalf("no stall recorded for the islanded process; stalls: %v", rep.Stalls)
	}
	for r := 1; r <= out.Trace.Len(); r++ {
		rec := out.Trace.Round(r)
		if !rec.Active.Has(1) {
			t.Fatalf("round %d: islanded p1 not active — it deadlocked instead of degrading", r)
		}
		d := rec.Suspects[1]
		if !d.Has(0) || !d.Has(2) {
			t.Fatalf("round %d: D(1,r) = %s, want {0,2}", r, d)
		}
	}
	// The mainland still reached its n-f quorum without p1.
	for _, p := range []core.PID{0, 2} {
		if len(out.Views[p]) != rounds {
			t.Fatalf("p%d completed %d rounds, want %d", p, len(out.Views[p]), rounds)
		}
	}
}

// TestUnlimitedAttemptsNeverGiveUp pins the documented MaxAttempts
// contract: negative means unlimited, so under the same partition the
// sender keeps retransmitting until the run ends and GiveUps stays zero.
func TestUnlimitedAttemptsNeverGiveUp(t *testing.T) {
	plan := faultnet.Plan{Seed: 1, Components: []faultnet.Component{{
		Kind:   faultnet.Partition,
		Groups: [][]core.PID{{0, 2}, {1}},
	}}}
	_, rep, err := RunRounds(3, 1, 1, RoundsConfig{
		Net:           msgnet.Config{Chooser: msgnet.Seeded(11), Faults: plan.Injector()},
		Link:          Config{RetransmitAfter: 4, RetransmitCap: 8, MaxAttempts: -1},
		WatchdogSteps: 400,
		LingerSteps:   100,
	}, nil)
	if err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if rep.GiveUps != 0 {
		t.Fatalf("unlimited attempts gave up %d frames", rep.GiveUps)
	}
	if rep.Retransmissions == 0 {
		t.Fatal("expected ongoing retransmissions across the partition")
	}
}
