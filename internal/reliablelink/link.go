// Package reliablelink recovers reliable, exactly-once message delivery on
// top of the lossy msgnet substrate: every data frame carries a per-link
// sequence number, receivers acknowledge and deduplicate, and senders
// retransmit unacknowledged frames with capped exponential backoff driven by
// the scheduler's step clock (no wall time anywhere).
//
// On top of the link, RunRounds re-implements the §2 item 3 round protocol
// with a watchdog: a round that stalls despite retransmission — because a
// sender crashed, omitted, or sits behind an unhealed partition — degrades
// gracefully into RRFD suspicions (the missing senders become D(i,r)
// entries) instead of deadlocking the execution, and the RunReport records
// who stalled, on whom, and in which round.
package reliablelink

import (
	"fmt"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/msgnet"
	"repro/internal/obs"
)

// Config tunes one process's reliable link.
type Config struct {
	// RetransmitAfter is the step interval before the first retransmission
	// of an unacknowledged frame; 0 means 8. Each further retransmission
	// doubles the interval up to RetransmitCap.
	RetransmitAfter int

	// RetransmitCap bounds the backoff interval; 0 means 128.
	RetransmitCap int

	// MaxAttempts bounds retransmissions per frame: once a frame has been
	// retransmitted MaxAttempts times without an acknowledgement, the
	// sender gives it up for lost ("rlink.giveup") and stops spending
	// steps on it. 0 means 25. Any negative value means unlimited — the
	// sender retransmits forever and the give-up path never fires, so an
	// unreachable receiver is then handled only by the round watchdog
	// above the link. A given-up frame is NOT redelivered later: if the
	// receiver needed it, the round stalls and degrades into a D(i,r)
	// suspicion (see RunRounds), never into a deadlock.
	MaxAttempts int

	// Observer, when non-nil, receives "rlink.retransmit", "rlink.giveup",
	// "rlink.dup_rx" and "rlink.watchdog" events.
	Observer obs.Observer
}

func (c Config) retransmitAfter() int {
	if c.RetransmitAfter <= 0 {
		return 8
	}
	return c.RetransmitAfter
}

func (c Config) retransmitCap() int {
	if c.RetransmitCap <= 0 {
		return 128
	}
	return c.RetransmitCap
}

func (c Config) maxAttempts() int {
	switch {
	case c.MaxAttempts == 0:
		return 25
	case c.MaxAttempts < 0:
		return int(^uint(0) >> 1)
	default:
		return c.MaxAttempts
	}
}

// Stats counts one link's recovery work.
type Stats struct {
	// Sent counts first transmissions of data frames.
	Sent int

	// Retransmissions counts repeated transmissions of unacked frames.
	Retransmissions int

	// GiveUps counts frames abandoned after MaxAttempts retransmissions.
	GiveUps int

	// AcksReceived counts acknowledgement frames consumed.
	AcksReceived int

	// DupFramesReceived counts data frames suppressed as duplicates.
	DupFramesReceived int
}

// frame is the wire format: a data frame (Ack false) carries the
// application payload under a per-link sequence number; an ack frame echoes
// the sequence number back.
type frame struct {
	Seq int
	Ack bool
	App core.Value
}

type ackKey struct {
	to  core.PID
	seq int
}

type pendingFrame struct {
	payload  core.Value
	nextAt   int // step of the next retransmission
	wait     int // the interval that expires at nextAt
	seq      *backoff.Seq
	attempts int
}

// Link is one process's reliable endpoint. It is not safe for concurrent
// use; like Node, it belongs to the single goroutine running the process.
type Link struct {
	nd      *msgnet.Node
	cfg     Config
	nextSeq map[core.PID]int
	unacked map[ackKey]*pendingFrame
	order   []ackKey // insertion order of unacked, for deterministic scans
	seen    map[core.PID]map[int]bool
	stats   Stats
}

// New wraps a msgnet node in a reliable link.
func New(nd *msgnet.Node, cfg Config) *Link {
	return &Link{
		nd:      nd,
		cfg:     cfg,
		nextSeq: make(map[core.PID]int),
		unacked: make(map[ackKey]*pendingFrame),
		seen:    make(map[core.PID]map[int]bool),
	}
}

// Node returns the underlying msgnet node (for its Clock).
func (l *Link) Node() *msgnet.Node { return l.nd }

// Stats returns the link's recovery counters so far.
func (l *Link) Stats() Stats { return l.stats }

// Send transmits payload to process to, tracked for retransmission until
// acknowledged. The loopback link is reliable by construction, so self
// sends are not tracked.
func (l *Link) Send(to core.PID, payload core.Value) error {
	seq := l.nextSeq[to]
	l.nextSeq[to]++
	if err := l.nd.Send(to, frame{Seq: seq, App: payload}); err != nil {
		return err
	}
	l.stats.Sent++
	if to == l.nd.Me {
		return nil
	}
	bo := backoff.Policy{Initial: l.cfg.retransmitAfter(), Cap: l.cfg.retransmitCap()}.Sequence()
	wait := bo.Next()
	l.unacked[ackKey{to, seq}] = &pendingFrame{payload: payload, nextAt: l.nd.Clock() + wait, wait: wait, seq: bo}
	l.order = append(l.order, ackKey{to, seq})
	return nil
}

// Broadcast sends payload reliably to every process including the sender.
func (l *Link) Broadcast(payload core.Value) error {
	for i := 0; i < l.nd.N; i++ {
		if err := l.Send(core.PID(i), payload); err != nil {
			return err
		}
	}
	return nil
}

// Recv returns the next fresh application message, or ok=false once the
// step clock reaches the absolute deadline with nothing fresh delivered.
// Acks, duplicates, and due retransmissions are handled internally.
func (l *Link) Recv(deadline int) (from core.PID, payload core.Value, ok bool, err error) {
	for {
		if err := l.retransmitDue(); err != nil {
			return 0, nil, false, err
		}
		wake := deadline
		if t, exists := l.nextTimer(); exists && t < wake {
			wake = t
		}
		env, got, err := l.nd.RecvTimeout(wake)
		if err != nil {
			return 0, nil, false, err
		}
		if !got {
			if l.nd.Clock() >= deadline {
				return 0, nil, false, nil
			}
			continue // a retransmission timer fired first
		}
		f, isFrame := env.Payload.(frame)
		if !isFrame {
			return 0, nil, false, fmt.Errorf("reliablelink: foreign payload %T", env.Payload)
		}
		if f.Ack {
			delete(l.unacked, ackKey{env.From, f.Seq})
			l.stats.AcksReceived++
			continue
		}
		if env.From != l.nd.Me {
			// Always re-ack: the previous ack may have been lost.
			if err := l.nd.Send(env.From, frame{Seq: f.Seq, Ack: true}); err != nil {
				return 0, nil, false, err
			}
		}
		if l.seen[env.From][f.Seq] {
			l.stats.DupFramesReceived++
			l.event("rlink.dup_rx", map[string]any{"from": int(env.From), "seq": f.Seq})
			continue
		}
		if l.seen[env.From] == nil {
			l.seen[env.From] = make(map[int]bool)
		}
		l.seen[env.From][f.Seq] = true
		return env.From, f.App, true, nil
	}
}

// Drain keeps the link serving acknowledgements, duplicate suppression and
// retransmissions until the step clock reaches the absolute step until —
// the linger a finishing process grants its peers so their last frames are
// not orphaned. Fresh application frames arriving during the drain are
// acknowledged and discarded.
func (l *Link) Drain(until int) error {
	for l.nd.Clock() < until {
		if _, _, _, err := l.Recv(until); err != nil {
			return err
		}
	}
	return nil
}

// Unacked returns the number of frames still awaiting acknowledgement.
func (l *Link) Unacked() int { return len(l.unacked) }

// retransmitDue retransmits every unacked frame whose timer expired,
// walking frames in insertion order for determinism.
func (l *Link) retransmitDue() error {
	if len(l.unacked) == 0 {
		l.order = l.order[:0]
		return nil
	}
	now := l.nd.Clock()
	kept := l.order[:0]
	for _, k := range l.order {
		pf := l.unacked[k]
		if pf == nil {
			continue // acked; compact out of the scan order
		}
		kept = append(kept, k)
		if pf.nextAt > now {
			continue
		}
		if pf.attempts >= l.cfg.maxAttempts() {
			delete(l.unacked, k)
			kept = kept[:len(kept)-1]
			l.stats.GiveUps++
			l.event("rlink.giveup", map[string]any{"to": int(k.to), "seq": k.seq, "attempts": pf.attempts})
			continue
		}
		if err := l.nd.Send(k.to, frame{Seq: k.seq, App: pf.payload}); err != nil {
			return err
		}
		pf.attempts++
		l.stats.Retransmissions++
		// The reported interval is the backoff that just expired — a
		// deterministic step count from the shared capped-exponential
		// ladder, so observers can histogram it.
		l.event("rlink.retransmit", map[string]any{"to": int(k.to), "seq": k.seq, "attempt": pf.attempts, "interval": pf.wait})
		pf.wait = pf.seq.Next()
		pf.nextAt = l.nd.Clock() + pf.wait
	}
	l.order = kept
	return nil
}

// nextTimer returns the earliest pending retransmission step.
func (l *Link) nextTimer() (int, bool) {
	best, found := 0, false
	for _, pf := range l.unacked {
		if !found || pf.nextAt < best {
			best, found = pf.nextAt, true
		}
	}
	return best, found
}

func (l *Link) event(kind string, fields map[string]any) {
	if l.cfg.Observer != nil {
		l.cfg.Observer.Event(kind, -1, int(l.nd.Me), fields)
	}
}
