package reliablelink

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/msgnet"
	"repro/internal/obs"
)

func TestLossyLinkRecoveredByRetransmission(t *testing.T) {
	// 40% drop on every link: all 20 messages must still arrive, each
	// exactly once, purely via retransmission. (The link guarantees
	// exactly-once, not FIFO: a retransmission can be overtaken.)
	plan := faultnet.Plan{Seed: 11, Components: []faultnet.Component{{Kind: faultnet.Drop, Rate: 0.4}}}
	var delivered []core.Value
	var sendStats Stats
	_, err := msgnet.Run(2, msgnet.Config{Faults: plan.Injector()}, func(nd *msgnet.Node) (core.Value, error) {
		l := New(nd, Config{RetransmitAfter: 4})
		if nd.Me == 0 {
			for i := 0; i < 20; i++ {
				if err := l.Send(1, i); err != nil {
					return nil, err
				}
			}
			err := l.Drain(nd.Clock() + 2000)
			sendStats = l.Stats()
			return nil, err
		}
		for len(delivered) < 20 {
			_, v, ok, err := l.Recv(nd.Clock() + 4000)
			if err != nil {
				return nil, err
			}
			if !ok {
				t.Errorf("receiver timed out after %d/20 messages", len(delivered))
				return nil, nil
			}
			delivered = append(delivered, v)
		}
		return nil, l.Drain(nd.Clock() + 500)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 20 {
		t.Fatalf("delivered %d/20", len(delivered))
	}
	seen := make(map[core.Value]bool)
	for _, v := range delivered {
		if seen[v] {
			t.Fatalf("value %v delivered twice", v)
		}
		seen[v] = true
	}
	for i := 0; i < 20; i++ {
		if !seen[i] {
			t.Fatalf("value %d never delivered", i)
		}
	}
	if sendStats.Retransmissions == 0 {
		t.Fatal("40% drop but zero retransmissions — the loss path was never exercised")
	}
}

func TestDuplicateFramesSuppressed(t *testing.T) {
	// Every message duplicated 2 extra times: receiver must see each value
	// exactly once and count the suppressed copies.
	plan := faultnet.Plan{Seed: 3, Components: []faultnet.Component{
		{Kind: faultnet.Duplicate, Rate: 1, Copies: 2},
	}}
	var delivered []core.Value
	var recvStats Stats
	_, err := msgnet.Run(2, msgnet.Config{Faults: plan.Injector()}, func(nd *msgnet.Node) (core.Value, error) {
		l := New(nd, Config{})
		if nd.Me == 0 {
			for i := 0; i < 5; i++ {
				if err := l.Send(1, i); err != nil {
					return nil, err
				}
			}
			return nil, l.Drain(nd.Clock() + 500)
		}
		for len(delivered) < 5 {
			_, v, ok, err := l.Recv(nd.Clock() + 1000)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			delivered = append(delivered, v)
		}
		err := l.Drain(nd.Clock() + 200)
		recvStats = l.Stats()
		return nil, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 5 {
		t.Fatalf("delivered %d/5", len(delivered))
	}
	if recvStats.DupFramesReceived == 0 {
		t.Fatal("every frame tripled but no duplicates recorded")
	}
}

func TestGiveUpAfterMaxAttempts(t *testing.T) {
	// A total blackout link: the sender must give the frame up after
	// MaxAttempts rather than retransmit forever.
	plan := faultnet.Plan{Seed: 1, Components: []faultnet.Component{{Kind: faultnet.Drop, Rate: 1}}}
	var st Stats
	var buf bytes.Buffer
	log := obs.NewEventLog(&buf)
	_, err := msgnet.Run(2, msgnet.Config{Faults: plan.Injector()}, func(nd *msgnet.Node) (core.Value, error) {
		l := New(nd, Config{RetransmitAfter: 2, MaxAttempts: 3, Observer: log})
		if nd.Me == 0 {
			if err := l.Send(1, "doomed"); err != nil {
				return nil, err
			}
			err := l.Drain(nd.Clock() + 300)
			st = l.Stats()
			return nil, err
		}
		_, _, _, err := l.Recv(nd.Clock() + 300)
		return nil, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.GiveUps != 1 {
		t.Fatalf("give-ups = %d, want 1", st.GiveUps)
	}
	if st.Retransmissions != 3 {
		t.Fatalf("retransmissions = %d, want MaxAttempts = 3", st.Retransmissions)
	}
	if !bytes.Contains(buf.Bytes(), []byte("rlink.giveup")) {
		t.Fatal("no rlink.giveup event logged")
	}
}

func TestRunRoundsFaultFreeMatchesSubstrate(t *testing.T) {
	// Without faults the reliable round protocol induces an eq.(3) trace
	// just like msgnet.RunRounds.
	out, rep, err := RunRounds(4, 1, 3, RoundsConfig{
		Net: msgnet.Config{Chooser: msgnet.Seeded(7)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalled() {
		t.Fatalf("fault-free run stalled: %v", rep.Stalls)
	}
	if out.Trace.Len() != 3 {
		t.Fatalf("trace rounds = %d, want 3", out.Trace.Len())
	}
	for _, rec := range out.Trace.Rounds {
		for i, d := range rec.Suspects {
			if !rec.Active.Has(core.PID(i)) {
				continue
			}
			if d.Count() > 1 {
				t.Fatalf("round %d: |D(%d)| = %d > f = 1", rec.R, i, d.Count())
			}
		}
	}
}

func TestRunRoundsSurvivesHeavyLoss(t *testing.T) {
	// 30% drop, n=4 f=1, 3 rounds: retransmission must carry every round to
	// quorum with no stalls and no deadlock.
	plan := faultnet.Plan{Seed: 99, Components: []faultnet.Component{{Kind: faultnet.Drop, Rate: 0.3}}}
	out, rep, err := RunRounds(4, 1, 3, RoundsConfig{
		Net:  msgnet.Config{Chooser: msgnet.Seeded(5), Faults: plan.Injector()},
		Link: Config{RetransmitAfter: 4},
	}, nil)
	if err != nil {
		t.Fatalf("err = %v\nreport: %s", err, rep)
	}
	if rep.Stalled() {
		t.Fatalf("stalled despite retransmission: %s", rep)
	}
	if rep.Retransmissions == 0 {
		t.Fatal("30% loss but zero retransmissions")
	}
	if out.Trace.Len() != 3 {
		t.Fatalf("trace rounds = %d, want 3", out.Trace.Len())
	}
}

func TestRunRoundsWatchdogConvertsPartitionToSuspicion(t *testing.T) {
	// p3 is cut off for the whole run by an unhealed partition. The other
	// processes' watchdogs must fire... no: with n=4, f=1 they reach quorum
	// n−f=3 without p3, so no stall; p3 itself stalls waiting for the
	// majority side and suspects it, degrading into D-entries, not deadlock.
	plan := faultnet.Plan{Seed: 1, Components: []faultnet.Component{{
		Kind:   faultnet.Partition,
		Groups: [][]core.PID{{0, 1, 2}, {3}},
		Name:   "island",
	}}}
	out, rep, err := RunRounds(4, 1, 2, RoundsConfig{
		Net:           msgnet.Config{Chooser: msgnet.Seeded(2), Faults: plan.Injector()},
		Link:          Config{RetransmitAfter: 4, MaxAttempts: 4},
		WatchdogSteps: 400,
		LingerSteps:   100,
	}, nil)
	if err != nil {
		t.Fatalf("partition must degrade, not error: %v\n%s", err, rep)
	}
	if !rep.Stalled() {
		t.Fatal("isolated p3 never stalled — watchdog did not fire")
	}
	for _, s := range rep.Stalls {
		if s.P != 3 {
			t.Fatalf("unexpected stall on the majority side: %s", s)
		}
	}
	// p3's suspicion sets must cover the entire majority side.
	for _, rec := range out.Trace.Rounds {
		d := rec.Suspects[3]
		for _, q := range []core.PID{0, 1, 2} {
			if !d.Has(q) {
				t.Fatalf("round %d: p3 reached quorum across an unhealed partition (D(3)=%s)", rec.R, d)
			}
		}
	}
}

func TestRunRoundsDeterministic(t *testing.T) {
	run := func() string {
		plan := faultnet.Plan{Seed: 44, Components: []faultnet.Component{
			{Kind: faultnet.Drop, Rate: 0.2},
			{Kind: faultnet.Delay, Rate: 0.3, MaxDelay: 6},
		}}
		out, rep, err := RunRounds(4, 1, 3, RoundsConfig{
			Net:  msgnet.Config{Chooser: msgnet.Seeded(8), Faults: plan.Injector()},
			Link: Config{RetransmitAfter: 4},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out.Trace.String() + "|" + rep.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seeds diverged:\n%s\nvs\n%s", a, b)
	}
}
