package reliablelink

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/msgnet"
)

// RoundsConfig tunes a reliable round-protocol execution.
type RoundsConfig struct {
	// Net configures the underlying lossy substrate (chooser, crashes,
	// fault injection, observer, step budget).
	Net msgnet.Config

	// Link configures each process's reliable endpoint.
	Link Config

	// WatchdogSteps is how many steps a process waits within one round —
	// retransmitting all the while — before it gives the round up, records
	// every still-missing sender as suspected for the round (the D(i,r)
	// entries) and moves on; 0 means 4096.
	WatchdogSteps int

	// LingerSteps is how long a process that finished its last round keeps
	// serving acknowledgements and retransmissions before returning, so
	// that slower peers can still complete; 0 means 1024.
	LingerSteps int
}

func (c RoundsConfig) watchdog() int {
	if c.WatchdogSteps <= 0 {
		return 4096
	}
	return c.WatchdogSteps
}

func (c RoundsConfig) linger() int {
	if c.LingerSteps <= 0 {
		return 1024
	}
	return c.LingerSteps
}

// Stall records one watchdog firing: process P gave up waiting in Round,
// still missing the round messages of Missing, at scheduler step Step.
type Stall struct {
	P       core.PID
	Round   int
	Missing []core.PID
	Step    int
}

// String renders the stall for diagnostics.
func (s Stall) String() string {
	return fmt.Sprintf("p%d stalled in round %d waiting on %v (step %d)", s.P, s.Round, s.Missing, s.Step)
}

// RunReport is the structured diagnosis of a reliable-rounds execution —
// the replacement for opaque deadlock/step-budget sentinels: it says who
// was blocked, on whom, in which round, and how much recovery work the
// links did.
type RunReport struct {
	// Stalls lists every watchdog firing, ordered by (process, round).
	Stalls []Stall

	// PerProc holds each process's link statistics.
	PerProc []Stats

	// Retransmissions, GiveUps and DupFramesReceived aggregate PerProc.
	Retransmissions   int
	GiveUps           int
	DupFramesReceived int

	// Steps is the substrate step count; Crashed the crashed processes.
	Steps   int
	Crashed core.Set

	// Errs holds per-process body errors (ErrCrashed for crashed ones).
	Errs map[core.PID]error
}

// Stalled reports whether any round stalled anywhere.
func (r *RunReport) Stalled() bool { return len(r.Stalls) > 0 }

// String renders a multi-line diagnostic summary.
func (r *RunReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reliablelink: %d steps, %d retransmissions, %d give-ups, %d duplicate frames",
		r.Steps, r.Retransmissions, r.GiveUps, r.DupFramesReceived)
	if r.Crashed.Count() > 0 {
		fmt.Fprintf(&b, ", crashed %s", r.Crashed)
	}
	for _, s := range r.Stalls {
		fmt.Fprintf(&b, "\n  %s", s)
	}
	return b.String()
}

// roundMsg is the reliable round protocol's payload.
type roundMsg struct {
	round int
	value core.Value
}

// RunRounds executes the round-based f-resilient asynchronous protocol of
// §2 item 3 over reliable links on a lossy substrate: in each round a
// process broadcasts its round message and receives until it holds n−f
// current-round messages, the link retransmitting lost frames underneath.
// If the round stalls past the watchdog despite retransmission, the process
// records every missing sender in D(i,r) and advances — lost messages
// degrade into suspicions, never into deadlock. Each process lingers after
// its last round so peers can finish.
//
// The trace in the outcome is the induced RRFD trace; when no round
// stalled it satisfies eq. (3) (|D(i,r)| ≤ f) exactly as the unreliable
// substrate's protocol does, and predicate checking of the trace is how the
// chaos harness decides which model the faulty execution still realized.
// The RunReport is always non-nil, even alongside an error.
func RunRounds(n, f, rounds int, cfg RoundsConfig, emit msgnet.RoundEmit) (*msgnet.RoundOutcome, *RunReport, error) {
	if emit == nil {
		emit = func(me core.PID, r int, _ map[core.PID]core.Value, _ core.Set) core.Value {
			return fmt.Sprintf("p%d@r%d", me, r)
		}
	}

	recs := make([]*msgnet.RoundRec, n)
	stalls := make([][]Stall, n)
	links := make([]*Link, n)
	out, err := msgnet.Run(n, cfg.Net, func(nd *msgnet.Node) (core.Value, error) {
		l := New(nd, cfg.Link)
		links[nd.Me] = l
		rec := &msgnet.RoundRec{}
		recs[nd.Me] = rec
		// future buffers messages from rounds ahead of ours.
		future := make(map[int]map[core.PID]core.Value)
		var prevMsgs map[core.PID]core.Value
		prevSus := core.NewSet(n)
		for r := 1; r <= rounds; r++ {
			v := emit(nd.Me, r, prevMsgs, prevSus)
			if err := l.Broadcast(roundMsg{round: r, value: v}); err != nil {
				return nil, err
			}
			got := future[r]
			if got == nil {
				got = make(map[core.PID]core.Value)
			}
			delete(future, r)
			deadline := nd.Clock() + cfg.watchdog()
			for len(got) < n-f {
				from, payload, ok, err := l.Recv(deadline)
				if err != nil {
					return nil, err
				}
				if !ok {
					// Watchdog: give the round up and suspect whoever is
					// still missing.
					missing := make([]core.PID, 0, n-len(got))
					for i := 0; i < n; i++ {
						if _, have := got[core.PID(i)]; !have {
							missing = append(missing, core.PID(i))
						}
					}
					stalls[nd.Me] = append(stalls[nd.Me], Stall{P: nd.Me, Round: r, Missing: missing, Step: nd.Clock()})
					l.event("rlink.watchdog", map[string]any{"round": r, "missing": len(missing), "step": nd.Clock()})
					break
				}
				m, isRound := payload.(roundMsg)
				if !isRound {
					return nil, fmt.Errorf("reliablelink: foreign payload %T", payload)
				}
				switch {
				case m.round == r:
					got[from] = m.value
				case m.round > r: // early: buffer
					if future[m.round] == nil {
						future[m.round] = make(map[core.PID]core.Value)
					}
					future[m.round][from] = m.value
				default: // late: discard
				}
			}
			d := core.FullSet(n)
			for p := range got {
				d.Remove(p)
			}
			rec.Dsets = append(rec.Dsets, d)
			rec.Views = append(rec.Views, got)
			prevMsgs, prevSus = got, d
		}
		return nil, l.Drain(nd.Clock() + cfg.linger())
	})

	rep := &RunReport{PerProc: make([]Stats, n), Crashed: core.NewSet(n)}
	if out != nil {
		rep.Steps = out.Steps
		rep.Crashed = out.Crashed
		rep.Errs = out.Errs
	}
	for i := 0; i < n; i++ {
		if links[i] != nil {
			st := links[i].Stats()
			rep.PerProc[i] = st
			rep.Retransmissions += st.Retransmissions
			rep.GiveUps += st.GiveUps
			rep.DupFramesReceived += st.DupFramesReceived
		}
		rep.Stalls = append(rep.Stalls, stalls[i]...)
	}

	crashed, steps := core.NewSet(n), 0
	if out != nil {
		crashed, steps = out.Crashed, out.Steps
	}
	return msgnet.AssembleRoundOutcome(n, rounds, recs, crashed, steps), rep, err
}
