package rrfd

import (
	"repro/internal/backoff"
	"repro/internal/chaos"
	"repro/internal/msgnet"
	"repro/internal/netsub"
	"repro/internal/reliablelink"
)

// ---- Real-network substrate (internal/netsub) ----

type (
	// Substrate is the node-facing surface every message-passing
	// substrate implements — the virtual-clock scheduler with steps, the
	// TCP mesh with milliseconds. Protocol bodies written against it run
	// unchanged on either.
	Substrate = msgnet.Substrate

	// RoundEmit produces one process's round-r payload from what it
	// heard (and suspected) in round r−1.
	RoundEmit = msgnet.RoundEmit

	// TCPNode is one process's endpoint in a real-socket mesh.
	TCPNode = netsub.Node

	// TCPConfig shapes one TCP node: peer addresses, queue bounds,
	// heartbeat cadence, redial backoff, flow-monitor eviction.
	TCPConfig = netsub.Config

	// TCPStats counts one node's transport work.
	TCPStats = netsub.Stats

	// TCPRoundsConfig tunes a round-protocol execution over TCP.
	TCPRoundsConfig = netsub.RoundsConfig

	// TCPRunReport diagnoses a networked execution: stalls, sheds,
	// reconnects, evictions.
	TCPRunReport = netsub.RunReport

	// RoundStall records one watchdog firing: who gave up which round,
	// missing whom.
	RoundStall = reliablelink.Stall

	// BackoffPolicy is the capped-exponential retry ladder shared by the
	// reliable link's retransmits and the TCP mesh's redials.
	BackoffPolicy = backoff.Policy

	// SockChaosConfig tunes the socket-level chaos proxy.
	SockChaosConfig = netsub.ChaosConfig

	// NetChaosConfig tunes the networked leg of a chaos cross-validation.
	NetChaosConfig = chaos.NetConfig

	// CrossVerdict compares one fault plan's safety verdict across the
	// virtual and TCP substrates.
	CrossVerdict = chaos.CrossVerdict
)

// Transport error values; the structured forms live in internal/netsub.
var (
	// ErrBackpressure reports a send shed at a full per-peer queue.
	ErrBackpressure = netsub.ErrBackpressure

	// ErrPeerEvicted reports a send to a peer the flow monitor cut off.
	ErrPeerEvicted = netsub.ErrEvicted
)

var (
	// StartTCPNode brings one mesh endpoint up.
	StartTCPNode = netsub.Start

	// RunTCPRounds is the in-process harness: n loopback nodes running
	// the §2 item 3 round protocol with a wall-clock watchdog.
	RunTCPRounds = netsub.RunRounds

	// RunSubstrateRounds executes the round protocol — broadcast, collect
	// n−f, watchdog stragglers into D(i,r) — against any Substrate.
	RunSubstrateRounds = netsub.RunSubstrateRounds

	// WrapChaosListener interposes the socket-level fault injector on
	// every connection accepted by a listener.
	WrapChaosListener = netsub.WrapListener

	// WrapChaosListeners binds n loopback listeners, all chaos-wrapped
	// under one fault plan.
	WrapChaosListeners = netsub.WrapAll

	// ChaosExecuteNet runs one k-set-agreement execution over real TCP
	// under a fault plan — the networked twin of a chaos campaign run.
	ChaosExecuteNet = chaos.ExecuteNet

	// ChaosCrossValidate runs the same fault plan through the virtual
	// injector and the socket proxy and compares the safety verdicts.
	ChaosCrossValidate = chaos.CrossValidate

	// SplitBrainPlan is the deterministic cross-validation scenario: a
	// never-healing three-way partition.
	SplitBrainPlan = chaos.SplitBrainPlan
)
