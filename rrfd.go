package rrfd

import (
	"repro/internal/core"
)

// Core model types, re-exported from the engine.
type (
	// PID identifies a process (0..n-1).
	PID = core.PID

	// Value is an algorithm input or decision output.
	Value = core.Value

	// Message is what a process emits in a round.
	Message = core.Message

	// Set is a set of processes over a fixed universe.
	Set = core.Set

	// Algorithm is one process's emit/receive round algorithm.
	Algorithm = core.Algorithm

	// Factory builds the per-process Algorithm.
	Factory = core.Factory

	// Oracle is the round-by-round fault detector, driven as an
	// adversary.
	Oracle = core.Oracle

	// OracleFunc adapts a function to Oracle.
	OracleFunc = core.OracleFunc

	// RoundPlan is one round of adversary choices.
	RoundPlan = core.RoundPlan

	// Trace records an execution's suspect sets for validation.
	Trace = core.Trace

	// RoundRecord is one round of a Trace.
	RoundRecord = core.RoundRecord

	// Result is the outcome of an execution.
	Result = core.Result

	// Option configures Run.
	Option = core.Option
)

// Engine entry points.
var (
	// Run executes an algorithm under an adversary in lock-step rounds.
	Run = core.Run

	// CollectTrace records an adversary's behaviour without an algorithm.
	CollectTrace = core.CollectTrace

	// TraceOracle replays a recorded trace as an adversary — the bridge
	// from exhaustive trace enumeration to exhaustive algorithm
	// verification.
	TraceOracle = core.TraceOracle

	// WithMaxRounds bounds an execution's length.
	WithMaxRounds = core.WithMaxRounds

	// WithoutTrace disables trace recording.
	WithoutTrace = core.WithoutTrace

	// WithRunToRound keeps the engine running past unanimous decision.
	WithRunToRound = core.WithRunToRound

	// WithMaxWallTime bounds an execution's wall-clock duration; exceeding
	// it returns a *TimeoutError carrying the partial trace.
	WithMaxWallTime = core.WithMaxWallTime

	// ErrMaxRounds reports an execution hitting its round limit.
	ErrMaxRounds = core.ErrMaxRounds
)

// TimeoutError reports a WithMaxWallTime budget exhausted mid-execution.
type TimeoutError = core.TimeoutError

// Set constructors.
var (
	// NewSet returns an empty set over a universe of n processes.
	NewSet = core.NewSet

	// SetOf returns the set with the given members.
	SetOf = core.SetOf

	// FullSet returns the set of all n processes.
	FullSet = core.FullSet

	// UnionAll returns the union of the given sets.
	UnionAll = core.UnionAll

	// IntersectAll returns the intersection of the given sets.
	IntersectAll = core.IntersectAll
)

// NewTrace returns an empty trace for n processes.
var NewTrace = core.NewTrace
