# Build, test and benchmark entry points. `make ci` is what the CI
# workflow runs; `make bench` regenerates BENCH_core.json, the committed
# performance baseline every perf PR diffs against.

GO ?= go

# Engine + agreement + chaos-campaign + TCP-substrate + service
# benchmarks tracked in BENCH_core.json.
BENCH_PKGS := ./internal/core ./internal/agreement ./internal/chaos ./internal/netsub ./internal/serve ./internal/fleet ./internal/wal
BENCH_PAT  ?= .

.PHONY: build test race vet ci bench bench-check chaos-short chaos recovery-short mc-short mc-cover hoalg-short telemetry-short net-short serve-short fleet-short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

ci: vet build race chaos-short recovery-short mc-short mc-cover hoalg-short telemetry-short net-short serve-short fleet-short

# Fixed-seed, small-N fault-injection campaigns under the race detector:
# quick enough for every CI run, loud on any safety violation (the chaos
# binary exits non-zero and prints seed + minimized fault plan).
chaos-short:
	$(GO) run -race ./cmd/rrfdsim -chaos -n 6 -f 2 -k 3 -runs 25 -drop 0.3 -seed 7
	$(GO) run -race ./cmd/rrfdsim -chaos -n 5 -f 1 -k 2 -runs 15 -seed 21 \
		-drop 0.3 -dup 0.3 -delay 0.4 -omit 0.4 -partition 0.5 -crashes 1

# Fixed-seed crash-recovery campaigns plus a kill-and-resume round trip,
# all under the race detector: every run crashes at least one process and
# audits safety; the resumed execution must match the journal or rrfdsim
# exits non-zero with a divergence error.
recovery-short:
	$(GO) run -race ./cmd/rrfdsim -chaos-recover -n 5 -f 1 -runs 25 -seed 42
	$(GO) run -race ./cmd/rrfdsim -chaos-recover -n 5 -f 1 -runs 15 -seed 7 \
		-drop 0.15 -delay 0.2
	dir=$$(mktemp -d)/ck && \
	$(GO) run -race ./cmd/rrfdsim -system crash -alg floodmin -n 8 -f 3 -seed 5 \
		-checkpoint $$dir -kill-after 1 && \
	$(GO) run -race ./cmd/rrfdsim -system crash -alg floodmin -n 8 -f 3 -seed 5 \
		-resume $$dir && rm -rf $${dir%/ck}

# Fixed-seed model-checking runs under the race detector: exhaustive
# exploration of small instances for three model families, a bounded
# sampled run, and the planted wrong-quorum bug — which MUST fail with its
# known one-choice counterexample (the ! inverts the expected exit 1).
mc-short:
	$(GO) run -race ./cmd/rrfdsim -mc -system async -n 3 -f 1 -alg qkset -workers 4
	$(GO) run -race ./cmd/rrfdsim -mc -system omission -n 3 -f 1 -alg floodmin -rounds 3
	$(GO) run -race ./cmd/rrfdsim -mc -system crash -n 3 -f 1 -alg floodmin -rounds 2 -mc-depth 1
	! $(GO) run -race ./cmd/rrfdsim -mc -system async -n 3 -f 1 -alg qkset -bug
	$(GO) run -race ./cmd/rrfdsim -mc -system async -n 3 -f 1 -alg qkset -bug -mc-replay c1:4; \
		test $$? -eq 1

# Coverage floor for the model-checking engine: the subsystem exists to
# find other packages' bugs, so its own statements stay >= 85% covered.
mc-cover:
	$(GO) test -cover ./internal/mc/ | awk '{ \
		for (i = 1; i <= NF; i++) if ($$i == "coverage:") c = substr($$(i+1), 1, length($$(i+1))-1); \
		print } END { \
		if (c + 0 < 85) { print "internal/mc coverage " c "% below 85% floor"; exit 1 } }'

# Model-algebra gate: the differential suites (compiled vs bespoke
# checkers, compiled vs bespoke enumerators, fuzz seed corpus, chaos
# closure) under the race detector, one -model smoke per run mode, and a
# coverage floor on the compiler package itself.
hoalg-short:
	$(GO) test -race -count=1 ./internal/hoalg/ ./internal/adversary/
	$(GO) run -race ./cmd/rrfdsim -model sync-crash -n 3 -f 1 -alg none -rounds 3
	$(GO) run -race ./cmd/rrfdsim -mc -model 'kset(2) | perround(1)' -n 3 -f 1 -k 2 -alg qkset
	$(GO) run -race ./cmd/rrfdsim -chaos -model async -n 5 -f 1 -k 2 -runs 10 -rounds 3 -seed 7
	$(GO) test -cover ./internal/hoalg/ | awk '{ \
		for (i = 1; i <= NF; i++) if ($$i == "coverage:") c = substr($$(i+1), 1, length($$(i+1))-1); \
		print } END { \
		if (c + 0 < 85) { print "internal/hoalg coverage " c "% below 85% floor"; exit 1 } }'

# Telemetry smoke under the race detector: a single run writes a Perfetto
# trace and a metrics snapshot; the planted-bug chaos campaign must fail
# (the leading ! inverts the expected exit 1) AND replay its first
# violation into a trace; both files must be non-empty.
telemetry-short:
	dir=$$(mktemp -d) && \
	$(GO) run -race ./cmd/rrfdsim -system kset -k 2 -n 6 -alg kset -seed 3 \
		-metrics -perfetto $$dir/run.json && \
	test -s $$dir/run.json && \
	! $(GO) run -race ./cmd/rrfdsim -chaos -n 6 -f 2 -k 3 -runs 60 -seed 13 \
		-drop 1.0 -omit 0.8 -partition 0.6 -watchdog 300 -bug \
		-perfetto $$dir/chaos.json && \
	test -s $$dir/chaos.json && rm -rf $$dir

# Real-network smoke under the race detector: the loopback TCP substrate
# tests (peer pool, backpressure, eviction, chaos proxy, cross-validation
# against the virtual injector) plus the multi-process run — one OS
# process per pid over inherited listeners, the highest pid killed and
# restarted mid-run, decisions audited for validity and k-agreement.
net-short:
	$(GO) test -race -count 1 ./internal/netsub/
	$(GO) run -race ./cmd/rrfdsim -substrate tcp -n 4 -f 1 -k 2 -rounds 3 -watchdog 600

# Agreement-service smoke under the race detector: the service package
# tests (durable instances, admission control, retry discipline), an
# in-process load-generator run with its idempotency/validity/k-agreement
# audit, the fixed-seed kill-and-recover campaign, and the same campaign
# with the planted ack-before-journal bug — which MUST fail on the lost
# acked decision (the leading ! inverts the expected exit 1).
serve-short:
	$(GO) test -race -count 1 ./internal/serve/
	$(GO) run -race ./cmd/rrfdload -local 3 -f 1 -clients 6 -requests 10 -seed 7
	$(GO) run -race ./cmd/rrfdsim -chaos-serve -n 3 -f 1 -k 2 -seed 7
	! $(GO) run -race ./cmd/rrfdsim -chaos-serve -n 3 -f 1 -k 2 -seed 7 -bug

# Engine-fleet smoke under the race detector: the fleet package tests
# (shard × worker determinism grid, repartitioned crash/resume, protocol
# audit) plus a pooled-connection scale run of the load generator — many
# virtual clients multiplexed over a bounded connection pool against a
# sharded local cluster, audits clean.
fleet-short:
	$(GO) test -race -count 1 ./internal/fleet/
	$(GO) run -race ./cmd/rrfdload -local 3 -f 1 -clients 2000 -conns 8 \
		-requests 1 -instances 256 -seed 7

# The larger sweep: every fault class, more seeds, more runs.
chaos:
	$(GO) run ./cmd/rrfdsim -chaos -n 6 -f 2 -k 3 -runs 500 -drop 0.3 -seed 7
	$(GO) run ./cmd/rrfdsim -chaos -n 6 -f 2 -k 3 -runs 300 -seed 21 \
		-drop 0.3 -dup 0.3 -delay 0.4 -omit 0.4 -partition 0.5 -crashes 2
	$(GO) run ./cmd/rrfdsim -chaos -n 8 -f 3 -k 4 -runs 200 -seed 5 \
		-drop 0.4 -delay 0.4 -partition 0.4 -crashes 3

# -count 3: the gate compares per-name ns/op minima, and min-of-3 irons
# out scheduler and fsync noise that a single run leaves in.
BENCH_COUNT ?= 3

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchstatjson -o BENCH_core.json

# The regression gate: rerun the tracked benchmarks and diff against the
# committed baseline; fails on >20% ns/op or allocs/op regressions. Refresh
# the baseline with `make bench` when a perf change is intentional.
# ServeDecide/throughput carries no allocs_per_op in the baseline (alloc
# gating skips entries missing it on either side): client retries under
# CPU contention make its alloc count noisy while ns/op stays stable, so
# re-drop that field after regenerating the baseline.
bench-check:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchstatjson -compare BENCH_core.json
