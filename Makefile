# Build, test and benchmark entry points. `make ci` is what the CI
# workflow runs; `make bench` regenerates BENCH_core.json, the committed
# performance baseline every perf PR diffs against.

GO ?= go

# Engine + agreement benchmarks tracked in BENCH_core.json.
BENCH_PKGS := ./internal/core ./internal/agreement
BENCH_PAT  ?= .

.PHONY: build test race vet ci bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

ci: vet build race

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchmem $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchstatjson -o BENCH_core.json
