package rrfd

import (
	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/obs"
)

// Observability layer, re-exported from internal/obs (see the package doc
// there for the observer contract and the JSONL event schema).
type (
	// Observer receives structured events from the engine and the
	// substrates. Embed ObserverBase to implement a subset of the hooks.
	Observer = obs.Observer

	// ObserverBase is an Observer with every hook a no-op.
	ObserverBase = obs.Base

	// Metrics is a concurrency-safe Observer aggregating counters and
	// histograms with a JSON-serializable Snapshot.
	Metrics = obs.Metrics

	// MetricsSnapshot is a point-in-time copy of a Metrics.
	MetricsSnapshot = obs.Snapshot

	// EventLog is an Observer streaming every hook as JSONL.
	EventLog = obs.EventLog
)

var (
	// NewMetrics returns an empty Metrics.
	NewMetrics = obs.NewMetrics

	// NewEventLog returns an EventLog writing JSONL to a writer.
	NewEventLog = obs.NewEventLog

	// MultiObserver fans hooks out to several observers.
	MultiObserver = obs.Multi

	// WithObserver attaches an observer to one engine execution.
	WithObserver = core.WithObserver

	// WithClock injects the engine's phase-timing clock (defaults to
	// time.Now; tests inject fakes for deterministic latency metrics).
	WithClock = core.WithClock

	// SetDefaultObserver installs a process-wide fallback observer for
	// every Run without an explicit WithObserver — how cmd/experiments
	// meters whole experiment sweeps without threading options through.
	SetDefaultObserver = core.SetDefaultObserver

	// DefaultObserver returns the installed fallback observer, or nil.
	DefaultObserver = core.DefaultObserver

	// OneRoundKSetObserved is OneRoundKSet reporting each process's
	// chosen identifier as an "agreement.kset_choose" event.
	OneRoundKSetObserved = agreement.OneRoundKSetObserved

	// PhasedConsensusObserved is PhasedConsensus reporting phase
	// transitions and adopt/commit outcomes as protocol events.
	PhasedConsensusObserved = agreement.PhasedConsensusObserved
)
