package rrfd

import (
	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/mc"
)

// ---- Systematic model checking (internal/mc) ----
//
// The model checker explores every adversary schedule of a small system:
// a Chooser-driven depth-first search over any deterministic run
// function, with state-hash pruning, symmetry and sleep-set reduction,
// bounded-depth random frontier sampling, first-class property checking,
// and shrinking to a minimal replayable counterexample. See DESIGN §12.

type (
	// MCOptions tunes an exploration (budget, depth bound, reductions,
	// workers, observer).
	MCOptions = mc.Options

	// MCResult reports an exploration: statistics, exhaustiveness, and
	// the counterexample if a property failed.
	MCResult = mc.Result

	// MCStats are the exploration counters (schedules, pruned, skips,
	// max depth).
	MCStats = mc.Stats

	// MCCounterexample is a shrunk, replayable violating schedule.
	MCCounterexample = mc.Counterexample

	// MCCtx is the choice context a run function draws decisions from.
	MCCtx = mc.Ctx

	// MCRunSpec binds an algorithm, an adversary and properties into an
	// explorable run function (via MCCheckRun).
	MCRunSpec = mc.RunSpec

	// MCProperty is a named predicate over a finished execution.
	MCProperty = mc.Property

	// MCPropertyError wraps a property violation with its name.
	MCPropertyError = mc.PropertyError

	// MCDivergenceError reports a non-deterministic run function.
	MCDivergenceError = mc.DivergenceError

	// ChoiceDecodeError reports a malformed counterexample choice string.
	ChoiceDecodeError = mc.DecodeError

	// EnumState is what an adversary enumeration may condition on.
	EnumState = adversary.EnumState

	// AdversaryEnum lists every round plan a model allows from a state.
	AdversaryEnum = adversary.Enum
)

var (
	// MCExplore runs the depth-first exploration of a run function.
	MCExplore = mc.Explore

	// MCReplay re-executes one recorded schedule.
	MCReplay = mc.Replay

	// MCCheckRun compiles an MCRunSpec into an explorable run function.
	MCCheckRun = mc.CheckRun

	// MCValidity, MCKAgreement, MCDecideWithin and MCTraceSatisfies are
	// the stock properties.
	MCValidity       = mc.Validity
	MCKAgreement     = mc.KAgreement
	MCDecideWithin   = mc.DecideWithin
	MCTraceSatisfies = mc.TraceSatisfies

	// FormatChoices and ParseChoices round-trip a counterexample through
	// its portable replay string ("c1:2.0.1").
	FormatChoices = mc.FormatChoices
	ParseChoices  = mc.ParseChoices

	// EnumeratedAdversary drives an enumeration as an Oracle for one
	// explored schedule.
	EnumeratedAdversary = adversary.Enumerated

	// EnumPerRoundBudget, EnumKSet, EnumSendOmission and EnumSyncCrash
	// enumerate the paper's model families (eqs. (3), k-set, (1),
	// (1)+(2)) for exhaustive exploration over small n.
	EnumPerRoundBudget = adversary.EnumPerRoundBudget
	EnumKSet           = adversary.EnumKSet
	EnumSendOmission   = adversary.EnumSendOmission
	EnumSyncCrash      = adversary.EnumSyncCrash

	// QuorumKSet is the quorum-gated k-set decision rule; QuorumKSetBuggy
	// is its wrong-quorum-size variant the checker demonstrably catches.
	QuorumKSet      = agreement.QuorumKSet
	QuorumKSetBuggy = agreement.QuorumKSetBuggy
)
