package rrfd_test

// Integration tests for the extension facade: views, immediate snapshots,
// the ABD register, tasks, phased consensus, and exhaustive machinery.

import (
	"testing"

	rrfd "repro"
)

func TestPublicAPIFullInformation(t *testing.T) {
	n := 5
	hist, _, err := rrfd.RunFullInfoHistory(n, 4, identityInputs(n), rrfd.AsyncBudget(n, 2, true, 3))
	if err != nil {
		t.Fatal(err)
	}
	for p := rrfd.PID(0); int(p) < n; p++ {
		log, err := rrfd.ReconstructFIFO(p, hist[p])
		if err != nil {
			t.Fatal(err)
		}
		if err := rrfd.CheckFIFO(log); err != nil {
			t.Fatal(err)
		}
	}
	views, _, err := rrfd.RunFullInfo(n, 2, identityInputs(n), rrfd.SharedMemAdversary(n, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rrfd.KnownByAll(n, views).Empty() {
		t.Fatal("eq4 for two rounds must make someone known by all")
	}
	em, err := rrfd.EmulateWrite(n, 0, hist)
	if err != nil {
		t.Fatal(err)
	}
	if em.CompleteRound == 0 && em.VisibleRound == 0 {
		t.Log("write incomplete under pure eq3 — allowed")
	}
}

func TestPublicAPIImmediateSnapshot(t *testing.T) {
	n := 4
	out, err := rrfd.RunImmediateRounds(n, 2, rrfd.SharedConfig{Chooser: rrfd.SeededChooser(5)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.ImmediateSnapshot(n).Check(out.Trace); err != nil {
		t.Fatal(err)
	}
	tr, err := rrfd.CollectTrace(n, 3, rrfd.OrderedBlocks(n, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.Immediacy().Check(tr); err != nil {
		t.Fatal(err)
	}
	// The one-shot object through the facade.
	res, err := rrfd.RunShared(n, rrfd.SharedConfig{Chooser: rrfd.SeededChooser(6)},
		func(p *rrfd.SharedProc) (rrfd.Value, error) {
			v, err := rrfd.NewImmediate(p, "x").Participate(int(p.Me))
			if err != nil {
				return nil, err
			}
			return v, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	views := make(map[rrfd.PID]*rrfd.ImmediateView, n)
	for pid, v := range res.Values {
		views[pid] = v.(*rrfd.ImmediateView)
	}
	if err := rrfd.CheckImmediateViews(n, views); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIABDRegister(t *testing.T) {
	out, err := rrfd.RunABD(3, 1, rrfd.NetConfig{Chooser: rrfd.NetSeeded(4)},
		func(r *rrfd.ABDRegister) error {
			if r.Writer() {
				return r.Write("v1")
			}
			_, err := r.Read()
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.CheckAtomic(out.Log); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPITasks(t *testing.T) {
	n, k := 8, 2
	rep, err := rrfd.Solves(rrfd.KSetAgreementTask(k), n, identityInputs(n), rrfd.OneRoundKSet(),
		rrfd.KSetDetector(k),
		func(seed int64) rrfd.Oracle { return rrfd.KSetUncertainty(n, k, seed) }, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxRounds != 1 {
		t.Fatalf("MaxRounds = %d", rep.MaxRounds)
	}
	if rrfd.ConsensusTask().Name() != "consensus" {
		t.Fatal("task naming broken")
	}
	if err := rrfd.AdoptCommitTask().Check(rrfd.TaskAssignment{
		Inputs: identityInputs(2),
		Outputs: map[rrfd.PID]rrfd.Value{
			0: rrfd.GradedValue{Commit: false, Value: 0},
			1: rrfd.GradedValue{Commit: false, Value: 1},
		},
		Crashed: rrfd.NewSet(2),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIPhasedConsensus(t *testing.T) {
	n, f, stab := 5, 2, 3
	res, err := rrfd.Run(n, identityInputs(n), rrfd.PhasedConsensus(),
		rrfd.EventuallySpare(n, f, stab, 1, 9), rrfd.WithMaxRounds(stab+3*(n+2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.ValidateAgreement(res, identityInputs(n), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := rrfd.EventuallyNeverSuspected(stab).Check(res.Trace); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExhaustive(t *testing.T) {
	checked, satisfying, err := rrfd.ExhaustiveImplies(3, 1, rrfd.IdenticalSuspects(), rrfd.KSetDetector(1))
	if err != nil {
		t.Fatal(err)
	}
	if checked != 343 || satisfying == 0 {
		t.Fatalf("checked=%d satisfying=%d", checked, satisfying)
	}
	_, witnesses, err := rrfd.ExhaustiveWitnesses(3, 1, rrfd.PerRoundBudget(1), rrfd.SomeoneSeenByAll())
	if err != nil {
		t.Fatal(err)
	}
	if witnesses == 0 {
		t.Fatal("cycle witnesses expected")
	}
	count := 0
	if err := rrfd.ExhaustiveTraces(2, 1, func(tr *rrfd.Trace) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 9 {
		t.Fatalf("count = %d", count)
	}
}

func TestPublicAPITraceOracleAndCrashSync(t *testing.T) {
	n, f, k := 4, 2, 2
	res, err := rrfd.CrashSync(n, f, k, 1, rrfd.SharedConfig{Chooser: rrfd.SeededChooser(3)},
		rrfd.FloodMin(1), identityInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.SyncCrash(f).Check(res.Result.Trace); err != nil {
		t.Fatal(err)
	}
	// Replay the simulated trace through the engine.
	replayed, err := rrfd.CollectTrace(n, res.Result.Trace.Len(), rrfd.TraceOracle(res.Result.Trace))
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Len() != res.Result.Trace.Len() {
		t.Fatal("replay length mismatch")
	}
}

func TestPublicAPIBToA(t *testing.T) {
	base, err := rrfd.CollectTrace(9, 4, rrfd.BSystemAdversary(9, 2, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := rrfd.BToA(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.PerRoundBudget(2).Check(sim); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIMiscAdversaries(t *testing.T) {
	n := 6
	for name, oracle := range map[string]rrfd.Oracle{
		"benign":    rrfd.Benign(n),
		"nomutual":  rrfd.NoMutualMissAdversary(n, 2, 1),
		"identical": rrfd.Identical(n, 1),
		"chain":     rrfd.ChainCrash(n, 2, 1),
		"omission":  rrfd.Omission(n, 2, 0.5, 1),
	} {
		if _, err := rrfd.CollectTrace(n, 4, oracle); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
