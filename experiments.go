package rrfd

import (
	"repro/internal/exp"
)

// ExperimentTable is one experiment's printable result table.
type ExperimentTable = exp.Table

// Experiment is a named experiment runner.
type Experiment = exp.Runner

// Experiments returns every paper experiment (E01–E15, see DESIGN.md §5 and
// EXPERIMENTS.md); each Run regenerates its table, in quick or full mode.
func Experiments() []Experiment {
	return exp.All()
}

// SetExperimentWorkers sets how many workers the experiments' seed sweeps
// fan out over: n > 0 is used as given (1 forces sequential sweeps), 0 means
// one worker per logical CPU. Tables are byte-identical for any worker count
// — only wall-clock time changes.
func SetExperimentWorkers(n int) {
	exp.SetWorkers(n)
}
