package rrfd

import (
	"repro/internal/exp"
)

// ExperimentTable is one experiment's printable result table.
type ExperimentTable = exp.Table

// Experiment is a named experiment runner.
type Experiment = exp.Runner

// Experiments returns every paper experiment (E01–E15, see DESIGN.md §5 and
// EXPERIMENTS.md); each Run regenerates its table, in quick or full mode.
func Experiments() []Experiment {
	return exp.All()
}
