package rrfd

import (
	"repro/internal/fleet"
)

// ---- Sharded multi-instance engine fleet (internal/fleet) ----
//
// The fleet runs N independent k-set agreement instances (k = F+1) in
// flat struct-of-arrays storage, partitioned across shards and par
// workers, with batched cross-shard routing — one channel handoff per
// shard pair per round. All randomness (inputs, slow sets, round
// schedules, suspicion coins) is a stateless hash of the seed, so a
// fixed-seed fleet is byte-identical at every shard × worker count,
// including across a mid-run checkpoint resumed on a differently
// partitioned fleet. See DESIGN §16.

type (
	// FleetConfig shapes one fleet: instance count, processes and fault
	// budget per instance, round schedule spread, shards, workers, seed.
	FleetConfig = fleet.Config

	// FleetResult is one fleet's canonical outcome: every instance's
	// round count and per-process decided values, with byte and checksum
	// forms for determinism comparisons, and a Checkpoint form for
	// crash/resume.
	FleetResult = fleet.Result
)

var (
	// FleetRun builds a fleet and runs every instance to completion (or
	// to Config.HaltAfterRound, for checkpointing).
	FleetRun = fleet.Run

	// FleetResume continues a checkpointed fleet — at any shard/worker
	// count — to the same bytes the uninterrupted run produces.
	FleetResume = fleet.Resume

	// FleetAudit re-derives the protocol's promises from the seed and
	// checks a result against them: schedule adherence, validity, and at
	// most F+1 distinct decisions per instance.
	FleetAudit = fleet.Audit

	// FleetInput is the deterministic input value hash4(seed, inst, p).
	FleetInput = fleet.Input
)
