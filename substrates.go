package rrfd

import (
	"repro/internal/adoptcommit"
	"repro/internal/detector"
	"repro/internal/msgnet"
	"repro/internal/semisync"
	"repro/internal/simulate"
	"repro/internal/snapshot"
	"repro/internal/swmr"
)

// ---- SWMR shared memory (§2 item 4 substrate) ----

type (
	// SharedProc is one process's handle to the shared memory.
	SharedProc = swmr.Proc

	// SharedConfig tunes a shared-memory execution (scheduler, crashes,
	// step budget).
	SharedConfig = swmr.Config

	// SharedOutcome reports a shared-memory execution.
	SharedOutcome = swmr.Outcome

	// SharedChooser is the shared-memory scheduling adversary.
	SharedChooser = swmr.Chooser
)

var (
	// RunShared executes a protocol body at every process over
	// linearizable SWMR registers under a controlled scheduler.
	RunShared = swmr.Run

	// Explore model-checks a shared-memory system over every schedule.
	Explore = swmr.Explore

	// SeededChooser is a deterministic pseudo-random scheduler.
	SeededChooser = swmr.Seeded

	// RoundRobinChooser is the fair cyclic scheduler.
	RoundRobinChooser = swmr.RoundRobin

	// PriorityGroups schedules earlier groups to completion first.
	PriorityGroups = swmr.PriorityGroups

	// ErrCrashed reports an operation by a crashed process.
	ErrCrashed = swmr.ErrCrashed

	// Bottom is the initial register value (⊥).
	Bottom = swmr.Bottom
)

// ---- Atomic snapshots (§2 item 5 substrate) ----

type (
	// Snapshot is a process's handle to a wait-free atomic snapshot
	// object.
	Snapshot = snapshot.Object

	// SnapshotCell is one component of the object.
	SnapshotCell = snapshot.Cell

	// SnapshotRoundOutcome reports a snapshot round-protocol run.
	SnapshotRoundOutcome = snapshot.RoundOutcome
)

var (
	// NewSnapshot returns a handle to a named snapshot object.
	NewSnapshot = snapshot.New

	// RunSnapshotRounds runs the §2 item 5 iterated snapshot protocol
	// and returns its RRFD trace.
	RunSnapshotRounds = snapshot.RunRounds
)

// ---- Adopt-commit (§4.2) ----

type (
	// AdoptCommitOutcome is a process's graded output.
	AdoptCommitOutcome = adoptcommit.Outcome

	// AdoptCommitGrade is Adopt or Commit.
	AdoptCommitGrade = adoptcommit.Grade
)

// Adopt-commit grades.
const (
	Adopt  = adoptcommit.Adopt
	Commit = adoptcommit.Commit
)

// AdoptCommit runs the wait-free §4.2 protocol instance name with proposal
// v for process p.
var AdoptCommit = adoptcommit.Run

// ---- Asynchronous message passing (§2 item 3 substrate) ----

type (
	// NetNode is one process's handle to the network.
	NetNode = msgnet.Node

	// NetConfig tunes a network execution.
	NetConfig = msgnet.Config

	// NetOutcome reports a network execution.
	NetOutcome = msgnet.Outcome

	// NetEnvelope is a delivered message.
	NetEnvelope = msgnet.Envelope

	// NetRoundOutcome reports a round-protocol run.
	NetRoundOutcome = msgnet.RoundOutcome
)

var (
	// RunNetwork executes a protocol body at every process over the
	// asynchronous network under a controlled delivery adversary.
	RunNetwork = msgnet.Run

	// RunNetworkRounds runs the §2 item 3 round-enforced protocol
	// (buffer early, discard late, wait for n−f) and returns its RRFD
	// trace.
	RunNetworkRounds = msgnet.RunRounds

	// NetSeeded is a deterministic pseudo-random network adversary.
	NetSeeded = msgnet.Seeded
)

// ---- Semi-synchronous DDS model (§5) ----

type (
	// SemiConfig tunes a semi-synchronous execution.
	SemiConfig = semisync.Config

	// SemiOutcome reports a semi-synchronous execution.
	SemiOutcome = semisync.Outcome

	// SemiStepper is one DDS process driven by atomic steps.
	SemiStepper = semisync.Stepper

	// TwoStepOutcome reports a two-step protocol execution.
	TwoStepOutcome = semisync.TwoStepOutcome
)

var (
	// RunSemiSync executes steppers in the DDS model.
	RunSemiSync = semisync.Run

	// RunTwoStep runs §5's 2-step-per-round eq. (5) protocol (consensus
	// decided after 2 steps) and returns its RRFD trace.
	RunTwoStep = semisync.RunTwoStep

	// TwoStepFactory builds the 2-step protocol processes.
	TwoStepFactory = semisync.TwoStepFactory

	// RelayFactory builds the 2n-step baseline processes.
	RelayFactory = semisync.RelayFactory

	// SemiSeeded is a deterministic pseudo-random step adversary.
	SemiSeeded = semisync.Seeded

	// SemiRoundRobin is the fair cyclic step scheduler.
	SemiRoundRobin = semisync.RoundRobin
)

// ---- Simulations (§4, §2 constructions) ----

type (
	// CrashSyncResult reports a Theorem 4.3 simulation.
	CrashSyncResult = simulate.CrashSyncResult
)

var (
	// TwoRoundsToSharedMemory derives a shared-memory execution from two
	// rounds of the eq. (3) system (§2 item 4, 2f < n).
	TwoRoundsToSharedMemory = simulate.TwoRoundsToSharedMemory

	// BToA derives an eq. (3) execution from two rounds of the B system.
	BToA = simulate.BToA

	// OmissionPrefix is Theorem 4.1: the first ⌊f/k⌋ snapshot rounds as
	// a synchronous send-omission execution.
	OmissionPrefix = simulate.OmissionPrefix

	// CrashSync is Theorem 4.3: synchronous crash rounds simulated on
	// asynchronous shared memory via adopt-commit.
	CrashSync = simulate.CrashSync
)

// ---- Classical failure detectors (§2 item 6) ----

type (
	// DetectorHistory is a classical failure-detector history.
	DetectorHistory = detector.History
)

var (
	// DetectorFromTrace reads an RRFD execution as a classical history.
	DetectorFromTrace = detector.FromTrace

	// DetectorOracle adapts a classical S history into an RRFD
	// adversary.
	DetectorOracle = detector.Oracle
)
