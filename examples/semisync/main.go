// Semi-synchronous consensus in 2 steps (§5, Theorem 5.1).
//
// In the Dolev–Dwork–Stockmeyer model variant — atomic receive/broadcast
// steps, reliable immediate broadcast — consensus was known to take 2n
// steps, and whether a constant-step algorithm existed was open. The paper
// answers it: two steps per process implement the eq. (5) detector (all
// suspect sets identical), and Theorem 3.1 with k = 1 then decides in one
// round. This example races the 2-step algorithm against the 2n-step relay
// baseline across system sizes.
//
//	go run ./examples/semisync
package main

import (
	"fmt"
	"log"

	rrfd "repro"
)

func main() {
	fmt.Println("steps per process until consensus decision:")
	fmt.Println("   n   2-step algorithm   2n-step baseline   speedup")
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		inputs := make([]rrfd.Value, n)
		for i := range inputs {
			inputs[i] = fmt.Sprintf("v%d", i)
		}

		fast, err := rrfd.RunTwoStep(n, 1, rrfd.SemiConfig{Chooser: rrfd.SemiSeeded(int64(n))}, inputs)
		if err != nil {
			log.Fatal(err)
		}
		// Every process must agree, and the trace must satisfy eq. (5).
		if err := rrfd.IdenticalSuspects().Check(fast.Trace); err != nil {
			log.Fatal(err)
		}
		distinct := map[rrfd.Value]bool{}
		for _, v := range fast.Outcome.Values {
			distinct[v] = true
		}
		if len(distinct) != 1 {
			log.Fatalf("n=%d: disagreement: %v", n, fast.Outcome.Values)
		}

		slow, err := rrfd.RunSemiSync(n, rrfd.SemiConfig{Chooser: rrfd.SemiRoundRobin()},
			rrfd.RelayFactory(), inputs)
		if err != nil {
			log.Fatal(err)
		}

		fs, ss := fast.Outcome.MaxDecisionSteps(), slow.MaxDecisionSteps()
		fmt.Printf("  %2d   %16d   %16d   %6.1fx\n", n, fs, ss, float64(ss)/float64(fs))
	}
	fmt.Println("\nthe speedup grows linearly in n — the shape of the paper's open-problem answer")
}
