// Model-check RRFD systems over EVERY schedule.
//
// Two acts. First, the SWMR shared-memory substrate: register operations
// serialize through a pluggable scheduler, so the schedule space of a
// small protocol instance can be enumerated exhaustively — every
// interleaving of every crash pattern. This verifies the paper's two
// adopt-commit properties (§4.2) across the whole space.
//
// Second, the generalized explorer (internal/mc): instead of interleaving
// register operations, enumerate every round plan the eq. (3) adversary
// model allows and execute the quorum-gated k-set algorithm under each.
// The honest decision rule survives the whole space; a planted
// wrong-quorum-size bug is caught, shrunk to a minimal counterexample,
// and replayed from its portable choice string.
//
//	go run ./examples/modelcheck
package main

import (
	"errors"
	"fmt"
	"log"

	rrfd "repro"
)

func main() {
	inputs := []rrfd.Value{"left", "right"}

	runOnce := func(ch rrfd.SharedChooser, crash map[rrfd.PID]int) (map[rrfd.PID]rrfd.AdoptCommitOutcome, error) {
		res, err := rrfd.RunShared(len(inputs), rrfd.SharedConfig{Chooser: ch, Crash: crash},
			func(p *rrfd.SharedProc) (rrfd.Value, error) {
				o, err := rrfd.AdoptCommit(p, "mc", inputs[p.Me])
				if err != nil {
					return nil, err
				}
				return o, nil
			})
		if err != nil {
			return nil, err
		}
		outs := make(map[rrfd.PID]rrfd.AdoptCommitOutcome)
		for pid, v := range res.Values {
			outs[pid] = v.(rrfd.AdoptCommitOutcome)
		}
		for pid, e := range res.Errs {
			if !errors.Is(e, rrfd.ErrCrashed) {
				return nil, fmt.Errorf("process %d: %w", pid, e)
			}
		}
		return outs, nil
	}

	// Property check across the full schedule space, for every crash
	// point of process 0 (−1 = no crash).
	totalSchedules := 0
	sawCommit, sawAdopt := false, false
	for crashAt := -1; crashAt <= 6; crashAt++ {
		var crash map[rrfd.PID]int
		if crashAt >= 0 {
			crash = map[rrfd.PID]int{0: crashAt}
		}
		count, err := rrfd.Explore(100000, func(ch rrfd.SharedChooser) error {
			outs, err := runOnce(ch, crash)
			if err != nil {
				return err
			}
			// Property 2: a commit forces every output value.
			for p, o := range outs {
				if o.Grade != rrfd.Commit {
					sawAdopt = true
					continue
				}
				sawCommit = true
				for q, o2 := range outs {
					if o2.Value != o.Value {
						return fmt.Errorf("p%d committed %v but p%d holds %v", p, o.Value, q, o2.Value)
					}
				}
			}
			// Validity: outputs are proposals.
			for p, o := range outs {
				if o.Value != "left" && o.Value != "right" {
					return fmt.Errorf("p%d output %v", p, o.Value)
				}
			}
			return nil
		})
		if err != nil {
			log.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		totalSchedules += count
	}
	fmt.Printf("verified adopt-commit over %d schedules (8 crash patterns × all interleavings)\n", totalSchedules)
	fmt.Printf("both grades reachable: commit=%v adopt=%v — the relation, not a function\n", sawCommit, sawAdopt)

	// The same machinery proves convergence: unanimous proposals commit
	// in EVERY schedule.
	count, err := rrfd.Explore(100000, func(ch rrfd.SharedChooser) error {
		res, err := rrfd.RunShared(2, rrfd.SharedConfig{Chooser: ch},
			func(p *rrfd.SharedProc) (rrfd.Value, error) {
				o, err := rrfd.AdoptCommit(p, "u", "same")
				if err != nil {
					return nil, err
				}
				return o, nil
			})
		if err != nil {
			return err
		}
		for pid, v := range res.Values {
			if o := v.(rrfd.AdoptCommitOutcome); o.Grade != rrfd.Commit || o.Value != "same" {
				return fmt.Errorf("p%d: %+v under unanimity", pid, o)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("convergence proven over %d unanimous-input schedules: all commit\n", count)

	// Act two: the generalized explorer over adversary schedules. Every
	// round the eq. (3) model allows 27 suspicion plans for n=3, f=1;
	// the explorer executes the algorithm under each, pruning subtrees
	// whose full system state (algorithms + adversary) was already
	// exhausted.
	n, f := 3, 1
	enum, err := rrfd.EnumPerRoundBudget(n, f)
	if err != nil {
		log.Fatal(err)
	}
	mcInputs := []rrfd.Value{0, 1, 2}
	spec := func(factory rrfd.Factory) rrfd.MCRunSpec {
		return rrfd.MCRunSpec{
			N: n, Inputs: mcInputs, Factory: factory,
			Oracle: func(ctx *rrfd.MCCtx) rrfd.Oracle {
				return rrfd.EnumeratedAdversary(ctx, n, enum)
			},
			Props: []rrfd.MCProperty{
				rrfd.MCValidity(mcInputs),
				rrfd.MCKAgreement(f + 1),
			},
			Mark: true,
		}
	}

	res, err := rrfd.MCExplore(rrfd.MCOptions{}, rrfd.MCCheckRun(spec(rrfd.QuorumKSet(f))))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquorum k-set verified under eq. (3): %d adversary schedules, exhausted=%v\n",
		res.Schedules, res.Exhausted)

	res, err = rrfd.MCExplore(rrfd.MCOptions{}, rrfd.MCCheckRun(spec(rrfd.QuorumKSetBuggy(f))))
	if err != nil {
		log.Fatal(err)
	}
	cx := res.Counterexample
	if cx == nil {
		log.Fatal("planted wrong-quorum bug not found")
	}
	replay := rrfd.FormatChoices(cx.Choices)
	fmt.Printf("planted wrong-quorum bug caught after %d schedules: %v\n", res.Schedules, cx.Err)
	fmt.Printf("minimal counterexample (%d choice): %s\n", len(cx.Choices), replay)

	// The choice string is the portable reproducer: parse and re-run it.
	choices, err := rrfd.ParseChoices(replay)
	if err != nil {
		log.Fatal(err)
	}
	if err := rrfd.MCReplay(choices, rrfd.MCCheckRun(spec(rrfd.QuorumKSetBuggy(f)))); err != nil {
		fmt.Printf("replayed %s: violation reproduced\n", replay)
	} else {
		log.Fatal("counterexample did not replay")
	}
}
