// Quickstart: solve consensus in a round-by-round fault detector system.
//
// The system is §2 item 6 of the paper — the RRFD counterpart of an
// asynchronous system with the failure detector S: up to n−1 processes may
// be suspected arbitrarily, round after round, but one (unknown!) process
// is never suspected by anyone. The rotating-coordinator algorithm decides
// in n rounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rrfd "repro"
)

func main() {
	const n = 5
	inputs := []rrfd.Value{"red", "green", "blue", "cyan", "plum"}

	// The adversary: suspect anyone except process 3, as hostilely as the
	// model allows.
	oracle := rrfd.SpareNeverSuspected(n, 3, 42 /* seed */)

	res, err := rrfd.Run(n, inputs, rrfd.RotatingCoordinator(), oracle)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("decisions:")
	for p := rrfd.PID(0); p < n; p++ {
		fmt.Printf("  process %d decided %v at round %d\n", p, res.Outputs[p], res.DecidedAt[p])
	}

	// The trace is the adversary's behaviour; check it really was the
	// detector-S model, i.e. some process was never suspected.
	if err := rrfd.NeverSuspectedExists().Check(res.Trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("never suspected: %s (the hidden 'accurate' process)\n", res.Trace.NeverSuspected())

	// And validate the consensus conditions mechanically.
	if err := rrfd.ValidateAgreement(res, inputs, 1, n); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consensus: agreement, validity and termination all hold")
}
