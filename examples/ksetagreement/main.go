// k-set agreement in ONE round (Theorem 3.1).
//
// The §3 detector bounds each round's "uncertainty" — the processes
// suspected by some but not all — below k. Under it, emitting your input
// and adopting the value of the smallest unsuspected identifier solves
// k-set agreement immediately. This example sweeps k and hostile seeds,
// reports the distinct-decision counts, and contrasts the synchronous
// route, which needs ⌊f/k⌋+1 rounds.
//
//	go run ./examples/ksetagreement
package main

import (
	"fmt"
	"log"

	rrfd "repro"
)

func main() {
	const n = 12
	inputs := make([]rrfd.Value, n)
	for i := range inputs {
		inputs[i] = i * 11 // anything distinct
	}

	fmt.Println("one-round k-set agreement under the §3 detector (n = 12):")
	fmt.Println("  k   runs   worst #distinct   rounds")
	for _, k := range []int{1, 2, 3, 4, 6} {
		worst, rounds := 0, 0
		const runs = 300
		for seed := int64(0); seed < runs; seed++ {
			res, err := rrfd.Run(n, inputs, rrfd.OneRoundKSet(), rrfd.KSetUncertainty(n, k, seed))
			if err != nil {
				log.Fatal(err)
			}
			if err := rrfd.ValidateAgreement(res, inputs, k, 1); err != nil {
				log.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			if d := res.DistinctOutputs(); d > worst {
				worst = d
			}
			if res.Rounds > rounds {
				rounds = res.Rounds
			}
		}
		fmt.Printf("  %d   %4d   %15d   %6d\n", k, runs, worst, rounds)
	}

	// The same detector arises from an atomic-snapshot system with k−1
	// crash failures (Corollary 3.2): run the very same algorithm under
	// the snapshot adversary.
	fmt.Println("\nCorollary 3.2: snapshot RRFD with f = k−1 solves k-set agreement:")
	for _, k := range []int{2, 4} {
		res, err := rrfd.Run(n, inputs, rrfd.OneRoundKSet(), rrfd.SnapshotChain(n, k-1, 7))
		if err != nil {
			log.Fatal(err)
		}
		if err := rrfd.ValidateAgreement(res, inputs, k, 1); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%d: %d distinct decision(s) in %d round\n", k, res.DistinctOutputs(), res.Rounds)
	}

	// Contrast: the synchronous crash model needs ⌊f/k⌋+1 rounds of
	// FloodMin for the same guarantee.
	f, k := 6, 2
	need := f/k + 1
	res, err := rrfd.Run(n, idInputs(n), rrfd.FloodMin(need), rrfd.ChainCrash(n, f, k))
	if err != nil {
		log.Fatal(err)
	}
	if err := rrfd.ValidateAgreement(res, idInputs(n), k, need); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynchronous route (f=%d, k=%d): FloodMin needed %d rounds — the detector collapses it to 1\n",
		f, k, need)
}

func idInputs(n int) []rrfd.Value {
	inputs := make([]rrfd.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	return inputs
}
