// The ⌊f/k⌋+1 synchronous lower bound, by reduction (Corollaries 4.2/4.4).
//
// The paper's §4 shows an asynchronous snapshot system with at most k crash
// failures can simulate the first ⌊f/k⌋ rounds of a synchronous system with
// f crash faults (Theorem 4.3, via the adopt-commit protocol). If any
// ⌊f/k⌋-round k-set agreement algorithm existed, the simulation would yield
// an asynchronous k-resilient k-set algorithm — which is impossible. This
// example demonstrates all three faces of the bound:
//
//  1. tightness: FloodMin with ⌊f/k⌋+1 rounds survives the chain adversary;
//
//  2. the bound: FloodMin truncated to ⌊f/k⌋ rounds outputs k+1 distinct
//     values under the same adversary;
//
//  3. the reduction: the truncated algorithm run THROUGH the Theorem 4.3
//     simulation breaks k-agreement under a staircase schedule with zero
//     real crashes — asynchrony alone manufactures the synchronous worst
//     case.
//
//     go run ./examples/synclowerbound
package main

import (
	"fmt"
	"log"

	rrfd "repro"
)

func main() {
	n, f, k := 10, 4, 2
	inputs := make([]rrfd.Value, n)
	for i := range inputs {
		inputs[i] = i
	}
	need := f/k + 1

	// 1. Tightness at ⌊f/k⌋+1 rounds.
	res, err := rrfd.Run(n, inputs, rrfd.FloodMin(need), rrfd.ChainCrash(n, f, k))
	if err != nil {
		log.Fatal(err)
	}
	if err := rrfd.ValidateAgreement(res, inputs, k, need); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FloodMin, %d rounds (=⌊f/k⌋+1): %d distinct decision(s) — %d-set agreement holds\n",
		need, res.DistinctOutputs(), k)

	// 2. One round less: the chain adversary hides values 0..k−1 at k
	// distinct survivors while everyone else holds k.
	trunc, err := rrfd.Run(n, inputs, rrfd.FloodMin(need-1), rrfd.ChainCrash(n, f, k))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FloodMin, %d rounds (=⌊f/k⌋):   %d distinct decisions — VIOLATES %d-set agreement\n",
		need-1, trunc.DistinctOutputs(), k)

	// 3. The reduction: same violation through the full Theorem 4.3
	// machinery (snapshot + adopt-commit), no real crashes at all.
	sn, sf, sk := 4, 2, 2
	sim, err := rrfd.CrashSync(sn, sf, sk, sf/sk,
		rrfd.SharedConfig{Chooser: rrfd.PriorityGroups(
			[]rrfd.PID{2, 3}, []rrfd.PID{1}, []rrfd.PID{0},
		)},
		rrfd.FloodMin(sf/sk), inputs[:sn])
	if err != nil {
		log.Fatal(err)
	}
	if err := rrfd.SyncCrash(sf).Check(sim.Result.Trace); err != nil {
		log.Fatal(err) // the simulated execution must still be legal
	}
	fmt.Printf("\nTheorem 4.3 simulation (n=%d, f=%d, k=%d, %d round, staircase schedule):\n",
		sn, sf, sk, sf/sk)
	fmt.Printf("  real crashes: %d, simulated trace: legal sync-crash execution\n", sim.RealCrashes.Count())
	fmt.Printf("  decisions: %v — %d distinct > k=%d\n", sim.Result.Outputs, sim.Result.DistinctOutputs(), sk)
	fmt.Println("  a correct ⌊f/k⌋-round algorithm would contradict async k-set impossibility — hence the bound")
}
