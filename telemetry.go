package rrfd

import (
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/obs/hist"
	"repro/internal/obs/trace"
	"repro/internal/par"
)

// Live telemetry, re-exported from internal/obs, internal/obs/hist,
// internal/obs/trace and internal/par: mergeable latency histograms, the
// causal span tracer with Perfetto export, the /metrics + /snapshot +
// /debug/pprof endpoint, and the worker-pool meter. See DESIGN §13.

type (
	// Telemetry bundles a Metrics observer and its histogram registry
	// behind one handle shared by observers, meters and the endpoint.
	Telemetry = obs.Telemetry

	// TelemetryServer is a live telemetry endpoint; Close releases it.
	TelemetryServer = obs.TelemetryServer

	// Histogram is a concurrency-safe log-bucketed latency/size histogram.
	Histogram = hist.Histogram

	// HistRegistry is a named collection of histograms.
	HistRegistry = hist.Registry

	// HistSnapshot is a point-in-time copy of one histogram, with
	// count/sum/max and p50..p999 quantile estimates.
	HistSnapshot = hist.Snap

	// Tracer is an Observer assembling the causal span trace of an
	// execution (run → round → phase spans, Emit→Deliver message flows,
	// suspicion/crash/decide instants) on the virtual step clock, exported
	// as Chrome/Perfetto trace-event JSON.
	Tracer = trace.Tracer

	// PoolMeter is the par worker pool's task-latency / queue-depth
	// instrumentation.
	PoolMeter = par.Meter

	// ChaosViolation is one chaos-campaign safety violation, carrying the
	// scheduler seed, crash set and minimized fault plan that replay it.
	ChaosViolation = chaos.Violation
)

var (
	// NewTelemetry returns a fresh Telemetry around an empty Metrics.
	NewTelemetry = obs.NewTelemetry

	// ServeTelemetry binds an address (synchronously, so bind errors are
	// returned, not logged from a goroutine) and serves /metrics,
	// /snapshot and /debug/pprof in the background.
	ServeTelemetry = obs.ServeTelemetry

	// WritePrometheus renders a MetricsSnapshot in the Prometheus text
	// exposition format.
	WritePrometheus = obs.WritePrometheus

	// NewHistogram returns an empty standalone histogram.
	NewHistogram = hist.New

	// NewHistRegistry returns an empty histogram registry.
	NewHistRegistry = hist.NewRegistry

	// NewTracer returns an empty Tracer.
	NewTracer = trace.New

	// SetPoolMeter installs (nil removes) the process-wide par pool meter.
	SetPoolMeter = par.SetMeter
)

// ChaosReplay re-executes one recorded violation scenario — same scheduler
// seed, same crash set, the minimized fault plan — under cfg's Observer.
// Attaching a Tracer renders the counterexample as a causal Perfetto
// trace. Only harness errors are returned; the replayed run's outputs are
// judged by the observer, not here.
func ChaosReplay(cfg ChaosConfig, v ChaosViolation) error {
	_, _, _, err := chaos.Execute(cfg, v.SchedSeed, v.MinPlan, v.Crashes)
	return err
}
