package rrfd_test

// Integration tests of the public API: every facade entry point is
// exercised the way README.md documents it.

import (
	"errors"
	"testing"

	rrfd "repro"
)

func TestPublicAPIConsensusUnderS(t *testing.T) {
	n := 5
	inputs := []rrfd.Value{"a", "b", "c", "d", "e"}
	res, err := rrfd.Run(n, inputs, rrfd.RotatingCoordinator(), rrfd.SpareNeverSuspected(n, 2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.ValidateAgreement(res, inputs, 1, n); err != nil {
		t.Fatal(err)
	}
	if err := rrfd.NeverSuspectedExists().Check(res.Trace); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIOneRoundKSet(t *testing.T) {
	n, k := 10, 3
	inputs := identityInputs(n)
	res, err := rrfd.Run(n, inputs, rrfd.OneRoundKSet(), rrfd.KSetUncertainty(n, k, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.ValidateAgreement(res, inputs, k, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPISetAlgebra(t *testing.T) {
	s := rrfd.SetOf(8, 1, 3, 5)
	if s.Count() != 3 || !s.Has(3) || s.Has(2) {
		t.Fatal("set basics broken through facade")
	}
	if !rrfd.FullSet(8).Diff(s).Equal(s.Complement()) {
		t.Fatal("complement identity broken")
	}
	u := rrfd.UnionAll(8, []rrfd.Set{s, rrfd.SetOf(8, 2)})
	if u.Count() != 4 {
		t.Fatal("UnionAll broken")
	}
	if !rrfd.IntersectAll(8, nil).Equal(rrfd.FullSet(8)) {
		t.Fatal("IntersectAll broken")
	}
}

func TestPublicAPICustomAlgorithmAndOracle(t *testing.T) {
	// A user-defined algorithm (max-flooding) under a user-defined
	// oracle, straight through the facade.
	n := 4
	type maxAlg struct {
		est int
	}
	factory := func(me rrfd.PID, n int, input rrfd.Value) rrfd.Algorithm {
		return &maxFlood{est: input.(int)}
	}
	oracle := rrfd.OracleFunc(func(r int, active rrfd.Set) rrfd.RoundPlan {
		sus := make([]rrfd.Set, n)
		for i := range sus {
			sus[i] = rrfd.NewSet(n)
		}
		return rrfd.RoundPlan{Suspects: sus}
	})
	res, err := rrfd.Run(n, identityInputs(n), factory, oracle)
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range res.Outputs {
		if v != n-1 {
			t.Fatalf("process %d decided %v, want %d", p, v, n-1)
		}
	}
	_ = maxAlg{}
}

type maxFlood struct {
	est int
}

func (a *maxFlood) Emit(r int) rrfd.Message { return a.est }

func (a *maxFlood) Deliver(r int, msgs map[rrfd.PID]rrfd.Message, suspects rrfd.Set) (rrfd.Value, bool) {
	for _, m := range msgs {
		if v := m.(int); v > a.est {
			a.est = v
		}
	}
	return a.est, r >= 2
}

func TestPublicAPISharedMemoryAndAdoptCommit(t *testing.T) {
	n := 3
	out, err := rrfd.RunShared(n, rrfd.SharedConfig{Chooser: rrfd.SeededChooser(4)},
		func(p *rrfd.SharedProc) (rrfd.Value, error) {
			o, err := rrfd.AdoptCommit(p, "it", "same")
			if err != nil {
				return nil, err
			}
			return o, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for pid, v := range out.Values {
		o := v.(rrfd.AdoptCommitOutcome)
		if o.Grade != rrfd.Commit || o.Value != "same" {
			t.Fatalf("process %d: %+v", pid, o)
		}
	}
}

func TestPublicAPISnapshotObject(t *testing.T) {
	n := 3
	out, err := rrfd.RunShared(n, rrfd.SharedConfig{Chooser: rrfd.SeededChooser(2)},
		func(p *rrfd.SharedProc) (rrfd.Value, error) {
			obj := rrfd.NewSnapshot(p, "o")
			if err := obj.Update(int(p.Me)); err != nil {
				return nil, err
			}
			view, err := obj.Scan()
			if err != nil {
				return nil, err
			}
			return view[p.Me].Value, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for pid, v := range out.Values {
		if v != int(pid) {
			t.Fatalf("process %d scanned own component %v", pid, v)
		}
	}
}

func TestPublicAPIExplore(t *testing.T) {
	count, err := rrfd.Explore(1000, func(ch rrfd.SharedChooser) error {
		_, err := rrfd.RunShared(2, rrfd.SharedConfig{Chooser: ch},
			func(p *rrfd.SharedProc) (rrfd.Value, error) {
				return nil, p.Write("x", 1)
			})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("two single-op processes have 2 interleavings, got %d", count)
	}
}

func TestPublicAPINetwork(t *testing.T) {
	out, err := rrfd.RunNetworkRounds(4, 1, 3, rrfd.NetConfig{Chooser: rrfd.NetSeeded(5)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.PerRoundBudget(1).Check(out.Trace); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPISemiSync(t *testing.T) {
	inputs := identityInputs(6)
	out, err := rrfd.RunTwoStep(6, 1, rrfd.SemiConfig{Chooser: rrfd.SemiSeeded(3)}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Outcome.MaxDecisionSteps(); got != 2 {
		t.Fatalf("decision after %d steps, want 2", got)
	}
	if err := rrfd.IdenticalSuspects().Check(out.Trace); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPISimulations(t *testing.T) {
	base, err := rrfd.CollectTrace(7, 6, rrfd.AsyncBudget(7, 3, false, 9))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := rrfd.TwoRoundsToSharedMemory(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.SharedMemory(3).Check(sim); err != nil {
		t.Fatal(err)
	}
	snap, err := rrfd.CollectTrace(8, 4, rrfd.SnapshotChain(8, 2, 9))
	if err != nil {
		t.Fatal(err)
	}
	pre, err := rrfd.OmissionPrefix(snap, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.SendOmission(4).Check(pre); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDetector(t *testing.T) {
	tr, err := rrfd.CollectTrace(5, 6, rrfd.SpareNeverSuspected(5, 1, 8))
	if err != nil {
		t.Fatal(err)
	}
	h := rrfd.DetectorFromTrace(tr)
	if err := h.CheckWeakAccuracy(); err != nil {
		t.Fatal(err)
	}
	res, err := rrfd.Run(5, identityInputs(5), rrfd.RotatingCoordinator(), rrfd.DetectorOracle(h))
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.ValidateAgreement(res, identityInputs(5), 1, 5); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	exps := rrfd.Experiments()
	if len(exps) != 20 { // E01–E15 plus the X01–X05 extensions
		t.Fatalf("got %d experiments, want 20", len(exps))
	}
	table, err := exps[6].Run(true) // E07
	if err != nil {
		t.Fatal(err)
	}
	if table.ID != "E07" {
		t.Fatalf("table.ID = %s", table.ID)
	}
}

func TestPublicAPIImplication(t *testing.T) {
	gen := func(seed int64) *rrfd.Trace {
		tr, err := rrfd.CollectTrace(6, 6, rrfd.Crash(6, 2, seed))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	if err := rrfd.Implies(gen, rrfd.SyncCrash(2), rrfd.SendOmission(2), 20); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRecovery(t *testing.T) {
	// Crash-recovery round protocol + audit through the facade.
	out, err := rrfd.RecoveryRun(5, 1, 4, rrfd.RecoveryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.RecoveryAudit(out, 5, 1, 4); err != nil {
		t.Fatal(err)
	}

	// Checkpointed engine run: kill at a round boundary, resume, finish.
	dir := t.TempDir() + "/ck"
	n := 5
	inputs := []rrfd.Value{"a", "b", "c", "d", "e"}
	oracle := func() rrfd.Oracle { return rrfd.SpareNeverSuspected(n, 2, 7) }
	_, err = rrfd.Run(n, inputs, rrfd.RotatingCoordinator(), oracle(),
		rrfd.WithCheckpointing(dir, rrfd.CheckpointOptions{Sync: rrfd.SyncAlways}),
		rrfd.WithHaltAfterRound(1))
	var halt *rrfd.HaltError
	if !errors.As(err, &halt) {
		t.Fatalf("want *HaltError, got %v", err)
	}
	res, err := rrfd.Resume(dir, rrfd.RotatingCoordinator(), oracle())
	if err != nil {
		t.Fatal(err)
	}
	if err := rrfd.ValidateAgreement(res, inputs, 1, n); err != nil {
		t.Fatal(err)
	}
}
